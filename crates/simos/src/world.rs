//! The simulation driver: the global event loop and the kernel logic of
//! every node.
//!
//! All kernel activity — scheduling, syscalls, packet movement, disk I/O —
//! happens in [`World::handle`], and every instrumented step calls
//! [`World::emit_ev`], which (a) timestamps the event with the node's NTP
//! wall clock, (b) dispatches it to subscribed analyzers, and (c) charges
//! the emission cost to the node's CPU. Monitoring is therefore never
//! free: it perturbs exactly the system it observes.

use std::collections::HashMap;

use bytes::Bytes;
use kprof::{AnalyzerId, BlockReason, EventPayload, GroupId, Kprof, NetPoint, Pid, SyscallKind};
use simcore::{EventQueue, NodeId, SimDuration, SimRng, SimTime};
use simnet::{
    ClockSpec, EndPoint, FaultPlan, FlowKey, LinkSpec, NetOutcome, Network, NetworkBuilder, Packet,
    PacketId, PayloadTag, Port, TopologyError,
};

use crate::node::{Node, NodeStats, RunningQuantum};
use crate::process::{PendingWork, ProcState, Process};
use crate::program::{Action, Callback, Message, ProcCtx, Program};
use crate::socket::{Socket, SocketId};
use crate::{CostConfig, NodeConfig};

/// CPU-time category charged by [`World::steal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CpuCat {
    Irq,
    Monitor,
}

/// What a CPU quantum is doing (stored in the running slot).
#[derive(Debug)]
pub(crate) enum QuantumKind {
    /// User-mode compute (one timeslice of it).
    Compute,
    /// Executing a syscall op; its effect applies at quantum end.
    Syscall(Action),
    /// Delivering kernel→program work; the program callback runs at end.
    Deliver(PendingWork),
}

/// Global calendar events.
enum Ev {
    Dispatch {
        node: NodeId,
    },
    QuantumEnd {
        node: NodeId,
    },
    PacketArrival {
        node: NodeId,
        packet: Packet,
    },
    RxStackDone {
        node: NodeId,
        packet: Packet,
    },
    NicTxDone {
        node: NodeId,
        packet: Packet,
    },
    DiskDone {
        node: NodeId,
        pid: Pid,
        token: u64,
        bytes: u64,
    },
    TimerFire {
        node: NodeId,
        pid: Pid,
        token: u64,
    },
    ConnEstablished {
        node: NodeId,
        pid: Pid,
        sock: SocketId,
    },
    ConnRetry {
        node: NodeId,
        pid: Pid,
        sock: SocketId,
        remote: NodeId,
        port: Port,
        attempt: u32,
    },
    DaemonWake {
        node: NodeId,
        analyzer: Option<AnalyzerId>,
    },
    NodeCrash {
        node: NodeId,
    },
    NodeRestart {
        node: NodeId,
    },
}

impl Ev {
    /// The node an event acts on (used to gate events against crashed
    /// nodes).
    fn target(&self) -> NodeId {
        match self {
            Ev::Dispatch { node }
            | Ev::QuantumEnd { node }
            | Ev::PacketArrival { node, .. }
            | Ev::RxStackDone { node, .. }
            | Ev::NicTxDone { node, .. }
            | Ev::DiskDone { node, .. }
            | Ev::TimerFire { node, .. }
            | Ev::ConnEstablished { node, .. }
            | Ev::ConnRetry { node, .. }
            | Ev::DaemonWake { node, .. }
            | Ev::NodeCrash { node }
            | Ev::NodeRestart { node } => *node,
        }
    }
}

/// A message a kernel component (sink or daemon) wants sent.
#[derive(Debug)]
pub struct KernelSend {
    /// Destination endpoint (its node is resolved by IP).
    pub dst: EndPoint,
    /// Source port on the sending node.
    pub src_port: Port,
    /// Application-level kind discriminant.
    pub kind: u32,
    /// Payload carried out-of-band to the receiving sink. A refcounted
    /// [`Bytes`], so a sender that also buffers the wire for
    /// retransmission shares one allocation with the in-flight copy.
    pub data: Bytes,
}

/// Output of a kernel sink or daemon-hook invocation.
#[derive(Debug, Default)]
pub struct KernelOutput {
    /// CPU time consumed (charged as monitoring overhead).
    pub cost: SimDuration,
    /// Messages to transmit.
    pub sends: Vec<KernelSend>,
    /// For daemon hooks: schedule another (periodic) wake this far in the
    /// future. Ignored for sinks.
    pub rearm_after: Option<SimDuration>,
}

/// A kernel-level message consumer bound to a port — the receive side of
/// the kernel publish/subscribe channels the dissemination daemon uses.
pub trait KernelSink {
    /// Handles one complete message addressed to the sink's port.
    fn on_message(
        &mut self,
        now_wall: SimTime,
        node: NodeId,
        src: EndPoint,
        msg: Message,
        data: Bytes,
    ) -> KernelOutput;
}

/// The dissemination daemon's kernel half: woken on buffer-full
/// notifications (and on explicit schedules), with access to the node's
/// Kprof registry to drain analyzer buffers.
pub trait DaemonHook {
    /// Handles one wakeup. `analyzer` is the analyzer whose buffer filled,
    /// or `None` for a periodic wake.
    fn on_wake(
        &mut self,
        now_wall: SimTime,
        node: NodeId,
        analyzer: Option<AnalyzerId>,
        kprof: &mut Kprof,
        stats: &NodeStats,
    ) -> KernelOutput;
}

/// Builds a [`World`]: topology plus per-node OS configuration.
///
/// # Example
///
/// ```
/// use simcore::NodeId;
/// use simnet::LinkSpec;
/// use simos::WorldBuilder;
///
/// let world = WorldBuilder::new(7)
///     .node("a")
///     .node("b")
///     .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
///     .build()?;
/// assert_eq!(world.node_count(), 2);
/// # Ok::<(), simnet::TopologyError>(())
/// ```
pub struct WorldBuilder {
    seed: u64,
    net: NetworkBuilder,
    configs: Vec<NodeConfig>,
    faults: Option<FaultPlan>,
}

impl WorldBuilder {
    /// Starts a builder with the experiment seed.
    pub fn new(seed: u64) -> Self {
        WorldBuilder {
            seed,
            net: NetworkBuilder::new(),
            configs: Vec::new(),
            faults: None,
        }
    }

    /// Installs a deterministic fault plan: link loss/jitter/duplication/
    /// reordering, timed partitions, and node crash/restart schedules. The
    /// injector draws from an RNG forked off the experiment seed, so two
    /// builds with the same seed and plan replay bit-identically.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Adds a node with default OS config and a perfect clock.
    #[must_use]
    pub fn node(mut self, name: &str) -> Self {
        self.net = self.net.node(name);
        self.configs.push(NodeConfig::default());
        self
    }

    /// Adds a node with explicit OS config and clock model.
    #[must_use]
    pub fn node_with(mut self, name: &str, config: NodeConfig, clock: ClockSpec) -> Self {
        self.net = self.net.node_with_clock(name, clock);
        self.configs.push(config);
        self
    }

    /// Links two nodes.
    #[must_use]
    pub fn link(mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> Self {
        self.net = self.net.link(a, b, spec);
        self
    }

    /// Links every pair of nodes with the same spec.
    #[must_use]
    pub fn full_mesh(mut self, spec: LinkSpec) -> Self {
        self.net = self.net.full_mesh(spec);
        self
    }

    /// Builds the world.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] for invalid topologies.
    pub fn build(self) -> Result<World, TopologyError> {
        let mut net = self.net.build()?;
        let nodes: Vec<Node> = self
            .configs
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| Node::new(NodeId(i as u32), cfg))
            .collect();
        let mut rng = SimRng::seed(self.seed);
        let mut queue = EventQueue::new();
        if let Some(plan) = self.faults {
            for cs in &plan.crashes {
                queue.schedule(cs.crash_at, Ev::NodeCrash { node: cs.node });
                if let Some(t) = cs.restart_at {
                    queue.schedule(t, Ev::NodeRestart { node: cs.node });
                }
            }
            // Fork the injector's stream before any process forks so the
            // per-process streams stay aligned across fault configurations.
            let fault_rng = rng.fork(0xFA17_7BAD);
            net.install_faults(plan, fault_rng);
        }
        let down = vec![false; nodes.len()];
        Ok(World {
            queue,
            net,
            nodes,
            down,
            rng,
            next_pid: 1,
            next_packet: 1,
            sinks: HashMap::new(),
            daemon_hooks: HashMap::new(),
            inflight_data: HashMap::new(),
            conn_setup_delay: SimDuration::from_micros(200),
        })
    }
}

/// The running simulation: topology, kernels, processes, calendar.
pub struct World {
    queue: EventQueue<Ev>,
    net: Network,
    nodes: Vec<Node>,
    /// Per-node crashed flag; events targeting a down node are discarded.
    down: Vec<bool>,
    rng: SimRng,
    next_pid: u32,
    next_packet: u64,
    sinks: HashMap<(NodeId, Port), Box<dyn KernelSink>>,
    daemon_hooks: HashMap<NodeId, Box<dyn DaemonHook>>,
    /// Out-of-band payloads for sink-bound messages, keyed by (rx flow,
    /// msg id).
    inflight_data: HashMap<(FlowKey, u64), Vec<Bytes>>,
    conn_setup_delay: SimDuration,
}

impl World {
    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Current (true) simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The node-local wall clock reading at the current instant.
    pub fn wall(&self, node: NodeId) -> SimTime {
        self.net.clock(node).wall(self.now())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The network (for link statistics, RTT estimates, addressing).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Spawns a user-level process running `program` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn spawn(&mut self, node: NodeId, name: &str, program: Box<dyn Program>) -> Pid {
        self.spawn_with(node, name, program, GroupId(0), false, None)
    }

    /// Spawns a process in a specific process group (the paper's predicate
    /// dimension).
    pub fn spawn_in_group(
        &mut self,
        node: NodeId,
        name: &str,
        program: Box<dyn Program>,
        gid: GroupId,
    ) -> Pid {
        self.spawn_with(node, name, program, gid, false, None)
    }

    /// Spawns a kernel daemon (like the in-kernel NFS server): all its CPU
    /// time counts as kernel time and message delivery skips the user copy.
    pub fn spawn_kernel_daemon(
        &mut self,
        node: NodeId,
        name: &str,
        program: Box<dyn Program>,
    ) -> Pid {
        self.spawn_with(node, name, program, GroupId(0), true, None)
    }

    fn spawn_with(
        &mut self,
        node: NodeId,
        name: &str,
        program: Box<dyn Program>,
        gid: GroupId,
        kernel_daemon: bool,
        parent: Option<Pid>,
    ) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let rng = self.rng.fork(pid.0 as u64);
        let mut proc = Process::new(pid, gid, name.to_owned(), program, rng);
        proc.kernel_daemon = kernel_daemon;
        let now = self.now();
        let n = &mut self.nodes[node.0 as usize];
        n.procs.insert(pid, proc);
        n.runq.push_back(pid);
        self.emit_ev(node, EventPayload::ProcessCreate { pid, parent, gid });
        self.try_dispatch(node, now);
        pid
    }

    /// Installs a kernel sink on `node:port` (the receive side of a
    /// monitoring channel). Replaces any previous sink on that port.
    pub fn install_sink(&mut self, node: NodeId, port: Port, sink: Box<dyn KernelSink>) {
        self.nodes[node.0 as usize].sink_ports.insert(port);
        self.sinks.insert((node, port), sink);
    }

    /// Installs the dissemination-daemon hook for `node`.
    pub fn set_daemon_hook(&mut self, node: NodeId, hook: Box<dyn DaemonHook>) {
        self.daemon_hooks.insert(node, hook);
    }

    /// Schedules a periodic-style daemon wake on `node` after `delay`.
    pub fn schedule_daemon_wake(&mut self, node: NodeId, delay: SimDuration) {
        let t = self.now() + delay;
        self.queue.schedule(
            t,
            Ev::DaemonWake {
                node,
                analyzer: None,
            },
        );
    }

    /// Opts a process into ARM-style request tagging: its network events
    /// will carry the application message id as a correlator, letting the
    /// LPA separate interleaved requests (the paper's "ARM support"
    /// escape hatch). Returns false if the process does not exist.
    pub fn enable_arm(&mut self, node: NodeId, pid: Pid) -> bool {
        match self.nodes[node.0 as usize].procs.get_mut(&pid) {
            Some(p) => {
                p.arm_enabled = true;
                true
            }
            None => false,
        }
    }

    /// The ARM correlator for a packet on `flow`, if the process that owns
    /// the matching socket opted in. `pid_hint` short-circuits the socket
    /// lookup when the caller already knows the process.
    fn arm_of(
        &self,
        node: NodeId,
        flow: FlowKey,
        pid_hint: Option<Pid>,
        msg_id: u64,
    ) -> Option<u64> {
        let n = &self.nodes[node.0 as usize];
        let pid = pid_hint.or_else(|| {
            // Inbound events carry the rx flow directly; outbound events
            // carry the tx flow, whose socket is keyed by its reverse.
            n.flows
                .get(&flow)
                .or_else(|| n.flows.get(&flow.reversed()))
                .and_then(|sid| n.sockets.get(sid))
                .map(|s| s.owner)
        })?;
        n.procs.get(&pid).filter(|p| p.arm_enabled).map(|_| msg_id)
    }

    /// Borrows a node's Kprof registry (to register analyzers, set masks,
    /// read monitoring stats).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn kprof(&self, node: NodeId) -> &Kprof {
        &self.nodes[node.0 as usize].kprof
    }

    /// Mutably borrows a node's Kprof registry.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn kprof_mut(&mut self, node: NodeId) -> &mut Kprof {
        &mut self.nodes[node.0 as usize].kprof
    }

    /// A node's observable counters.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_stats(&self, node: NodeId) -> NodeStats {
        self.nodes[node.0 as usize].stats
    }

    /// Cumulative (user, kernel) CPU time of a process, if it exists.
    pub fn process_times(&self, node: NodeId, pid: Pid) -> Option<(SimDuration, SimDuration)> {
        self.nodes[node.0 as usize]
            .procs
            .get(&pid)
            .map(|p| (p.user_time, p.kernel_time))
    }

    /// When a process exited, if it has.
    pub fn process_exit_time(&self, node: NodeId, pid: Pid) -> Option<SimTime> {
        self.nodes[node.0 as usize]
            .procs
            .get(&pid)
            .and_then(|p| p.exited_at)
    }

    /// Whether a process has exited.
    pub fn process_exited(&self, node: NodeId, pid: Pid) -> bool {
        self.nodes[node.0 as usize]
            .procs
            .get(&pid)
            .map(|p| p.is_exited())
            .unwrap_or(true)
    }

    /// The disk of a node (for utilization inspection).
    pub fn disk(&self, node: NodeId) -> &crate::Disk {
        &self.nodes[node.0 as usize].disk
    }

    /// Injects a disk fault on `node`: seek time and per-request overhead
    /// multiply by `factor`, transfer rate divides by it. `factor = 1.0`
    /// restores nominal service. Used to reproduce the "detect failures"
    /// scenario of §3.2.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn degrade_disk(&mut self, node: NodeId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "bad degradation factor {factor}"
        );
        let nominal = self.nodes[node.0 as usize].config.disk;
        let disk = &mut self.nodes[node.0 as usize].disk;
        disk.set_spec(crate::DiskSpec {
            seek: nominal.seek.mul_f64(factor),
            transfer_bps: ((nominal.transfer_bps as f64 / factor) as u64).max(1),
            overhead: nominal.overhead.mul_f64(factor),
        });
    }

    /// Whether `node` is currently crashed.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.down[node.0 as usize]
    }

    /// Fail-stop crash of `node` at the current instant: the CPU halts
    /// mid-quantum, every process dies without running exit handlers, and
    /// all kernel state (sockets, listeners, partially assembled messages,
    /// device queues) is lost. In-flight packets addressed to the node are
    /// discarded on arrival and counted in
    /// [`NodeStats::crash_drops`](crate::NodeStats). No-op if already down.
    ///
    /// Crashes can also be scheduled declaratively via
    /// [`FaultPlan`](simnet::FaultPlan) and [`WorldBuilder::faults`].
    pub fn crash_node(&mut self, node: NodeId) {
        let now = self.now();
        self.do_crash(node, now);
    }

    /// Restarts a crashed `node` at the current instant: the node comes
    /// back with empty kernel tables but its Kprof registry and daemon
    /// hook intact (a warm monitoring-stack restart), and the daemon's
    /// periodic wake chain is re-kicked. No-op if the node is up.
    pub fn restart_node(&mut self, node: NodeId) {
        let now = self.now();
        self.do_restart(node, now);
    }

    fn do_crash(&mut self, node: NodeId, now: SimTime) {
        if self.down[node.0 as usize] {
            return;
        }
        self.down[node.0 as usize] = true;
        let ip = self.net.node_ip(node);
        let running = self.nodes[node.0 as usize].running.take();
        if let Some(rq) = running {
            self.queue.cancel(rq.end_handle);
        }
        let n = &mut self.nodes[node.0 as usize];
        n.runq.clear();
        n.dispatch_pending = false;
        n.last_pid = None;
        for p in n.procs.values_mut() {
            if !p.is_exited() {
                // Power loss: no exit events, no reaping — the process
                // just stops existing.
                p.state = ProcState::Exited;
                p.ops.clear();
                p.pending.clear();
                p.remaining_compute = SimDuration::ZERO;
                p.exited_at = Some(now);
            }
        }
        n.sockets.clear();
        n.flows.clear();
        n.listeners.clear();
        n.sink_socks.clear();
        n.tx_waiters.clear();
        n.tx_queue_bytes = 0;
        n.rx_backlog = 0;
        n.softirq_busy_until = SimTime::ZERO;
        n.cpu_busy_until = SimTime::ZERO;
        // Partially received sink payloads vanish with the node's memory.
        self.inflight_data.retain(|(flow, _), _| flow.dst.ip != ip);
    }

    fn do_restart(&mut self, node: NodeId, now: SimTime) {
        if !self.down[node.0 as usize] {
            return;
        }
        self.down[node.0 as usize] = false;
        // The daemon's periodic wake chain died with the node; re-kick it
        // after a short boot delay so dissemination resumes.
        if self.daemon_hooks.contains_key(&node) {
            self.queue.schedule(
                now + SimDuration::from_millis(1),
                Ev::DaemonWake {
                    node,
                    analyzer: None,
                },
            );
        }
    }

    /// Sends a message from kernel context (no process) on `node` to a
    /// remote endpoint, carrying `data` to the receiving kernel sink.
    /// Returns the message id. The transmission consumes real simulated
    /// bandwidth and CPU (charged as monitoring overhead).
    pub fn kernel_send(
        &mut self,
        node: NodeId,
        src_port: Port,
        dst: EndPoint,
        kind: u32,
        data: impl Into<Bytes>,
    ) -> u64 {
        let data = data.into();
        let now = self.now();
        let n = &mut self.nodes[node.0 as usize];
        let msg_id = n.next_msg;
        n.next_msg += 1;
        let src = EndPoint::new(self.net.node_ip(node), src_port);
        let flow = FlowKey::new(src, dst);
        let bytes = data.len() as u64;
        self.inflight_data
            .entry((flow, msg_id))
            .or_default()
            .push(data);
        self.transmit_message(node, flow, msg_id, kind, bytes, None, now, true);
        msg_id
    }

    /// Runs the simulation until the calendar is exhausted.
    pub fn run(&mut self) {
        while let Some((now, ev)) = self.queue.pop() {
            self.handle(now, ev);
        }
    }

    /// Runs the simulation until (true) time `t`. Events at exactly `t`
    /// are processed.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.handle(now, ev);
        }
    }

    /// Runs for a further duration of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    // ------------------------------------------------------------------
    // Monitoring plumbing
    // ------------------------------------------------------------------

    /// Emits a Kprof event on `node` at the current instant: wall-stamps
    /// it, dispatches to analyzers, charges the cost, and schedules daemon
    /// wakes for any buffer-full notifications.
    fn emit_ev(&mut self, node: NodeId, payload: EventPayload) {
        let now = self.now();
        let wall = self.net.clock(node).wall(now);
        let n = &mut self.nodes[node.0 as usize];
        let ev = n.kprof.make_event(wall, 0, payload);
        let result = n.kprof.emit(&ev);
        self.steal(node, now, result.cost, CpuCat::Monitor);
        for analyzer in result.buffer_full {
            self.queue.schedule(
                now + SimDuration::from_micros(10),
                Ev::DaemonWake {
                    node,
                    analyzer: Some(analyzer),
                },
            );
        }
    }

    /// Charges `cost` of CPU time on `node` at `now`: stretches the
    /// running quantum (preemption) or extends the idle-CPU busy horizon.
    fn steal(&mut self, node: NodeId, now: SimTime, cost: SimDuration, cat: CpuCat) {
        if cost.is_zero() {
            return;
        }
        let n = &mut self.nodes[node.0 as usize];
        match cat {
            CpuCat::Irq => n.stats.cpu.irq += cost,
            CpuCat::Monitor => n.stats.cpu.monitor += cost,
        }
        if let Some(rq) = n.running.as_mut() {
            rq.stolen += cost;
            rq.end_time += cost;
            let new_end = rq.end_time;
            let node_id = n.id;
            self.queue.cancel(rq.end_handle);
            let handle = self
                .queue
                .schedule(new_end, Ev::QuantumEnd { node: node_id });
            self.nodes[node.0 as usize]
                .running
                .as_mut()
                .expect("still running")
                .end_handle = handle;
        } else {
            n.cpu_busy_until = n.cpu_busy_until.max(now) + cost;
        }
    }

    // ------------------------------------------------------------------
    // Scheduler
    // ------------------------------------------------------------------

    /// Ensures a Dispatch event is pending if the CPU could start work.
    fn try_dispatch(&mut self, node: NodeId, now: SimTime) {
        let n = &mut self.nodes[node.0 as usize];
        if n.running.is_some() || n.dispatch_pending || n.runq.is_empty() {
            return;
        }
        n.dispatch_pending = true;
        let at = now.max(n.cpu_busy_until);
        self.queue.schedule(at, Ev::Dispatch { node });
    }

    /// The Dispatch handler: picks the next runnable process and starts a
    /// quantum. Processes that turn out to be idle are blocked in place.
    fn dispatch(&mut self, node: NodeId, now: SimTime) {
        {
            let n = &mut self.nodes[node.0 as usize];
            n.dispatch_pending = false;
            if n.running.is_some() {
                return;
            }
            if now < n.cpu_busy_until {
                // Interrupt work arrived since this dispatch was scheduled.
                let at = n.cpu_busy_until;
                n.dispatch_pending = true;
                self.queue.schedule(at, Ev::Dispatch { node });
                return;
            }
        }

        loop {
            let Some(pid) = self.nodes[node.0 as usize].runq.pop_front() else {
                // Nothing runnable: CPU goes idle.
                let n = &mut self.nodes[node.0 as usize];
                if let Some(last) = n.last_pid.take() {
                    self.emit_ev(
                        node,
                        EventPayload::ContextSwitch {
                            from: Some(last),
                            to: None,
                        },
                    );
                }
                return;
            };

            match self.next_quantum(node, pid, now) {
                NextQuantum::Run {
                    kind,
                    work,
                    syscall,
                } => {
                    self.start_quantum(node, pid, now, kind, work, syscall);
                    return;
                }
                NextQuantum::Blocked => continue,
                NextQuantum::Gone => continue,
            }
        }
    }

    /// Starts one quantum for `pid`.
    fn start_quantum(
        &mut self,
        node: NodeId,
        pid: Pid,
        now: SimTime,
        kind: QuantumKind,
        work: SimDuration,
        syscall: Option<SyscallKind>,
    ) {
        let cfg = self.costs(node);
        let mut total = work;
        let switching = self.nodes[node.0 as usize].last_pid != Some(pid);
        if switching {
            total += cfg.context_switch;
        }
        let end_time = now + total;
        let handle = self.queue.schedule(end_time, Ev::QuantumEnd { node });
        let from = self.nodes[node.0 as usize].last_pid;
        {
            let n = &mut self.nodes[node.0 as usize];
            if switching {
                n.stats.cpu.kernel += cfg.context_switch;
                n.stats.context_switches += 1;
                n.last_pid = Some(pid);
            }
            let proc = n.procs.get_mut(&pid).expect("runnable process exists");
            proc.state = ProcState::Running;
            n.running = Some(RunningQuantum {
                pid,
                end_handle: handle,
                end_time,
                kind,
                work,
                stolen: SimDuration::ZERO,
            });
        }
        if switching {
            self.emit_ev(
                node,
                EventPayload::ContextSwitch {
                    from,
                    to: Some(pid),
                },
            );
        }
        if let Some(kind) = syscall {
            self.emit_ev(node, EventPayload::SyscallEntry { pid, kind });
        }
    }

    /// Decides what `pid` does next (without yet starting it).
    fn next_quantum(&mut self, node: NodeId, pid: Pid, _now: SimTime) -> NextQuantum {
        let cfg = self.costs(node);
        let i = node.0 as usize;
        loop {
            // Gone/exited?
            match self.nodes[i].procs.get(&pid) {
                None => return NextQuantum::Gone,
                Some(p) if p.is_exited() => return NextQuantum::Gone,
                _ => {}
            }

            // Resume preempted compute first.
            {
                let p = self.nodes[i].procs.get(&pid).expect("checked above");
                if !p.remaining_compute.is_zero() {
                    let work = p.remaining_compute.min(cfg.timeslice);
                    return NextQuantum::Run {
                        kind: QuantumKind::Compute,
                        work,
                        syscall: None,
                    };
                }
            }

            // Next queued op. Sends block first on tx backpressure.
            let front_is_send = matches!(
                self.nodes[i].procs.get(&pid).expect("checked").ops.front(),
                Some(Action::Send { .. })
            );
            if front_is_send && self.nodes[i].tx_queue_bytes >= cfg.socket_tx_bytes {
                {
                    let n = &mut self.nodes[i];
                    n.procs.get_mut(&pid).expect("checked").state =
                        ProcState::Blocked(BlockReason::SocketSend);
                    n.tx_waiters.push(pid);
                }
                self.emit_ev(
                    node,
                    EventPayload::ProcessBlock {
                        pid,
                        reason: BlockReason::SocketSend,
                    },
                );
                return NextQuantum::Blocked;
            }
            let op_opt = self.nodes[i]
                .procs
                .get_mut(&pid)
                .expect("checked")
                .ops
                .pop_front();
            if let Some(op) = op_opt {
                if let Action::Compute(d) = op {
                    self.nodes[i]
                        .procs
                        .get_mut(&pid)
                        .expect("checked")
                        .remaining_compute = d;
                    continue; // resume-compute branch picks it up
                }
                let (work, syscall) = match &op {
                    Action::Compute(_) => unreachable!("handled above"),
                    Action::Send { bytes, .. } => {
                        let packets = Packet::count_for_payload(*bytes);
                        (
                            cfg.syscall_base + cfg.copy_cost(*bytes) + cfg.tx_stack * packets,
                            Some(SyscallKind::Send),
                        )
                    }
                    Action::Listen { .. } => (cfg.syscall_base, Some(SyscallKind::Open)),
                    Action::Connect { .. } => (cfg.syscall_base * 2, Some(SyscallKind::Open)),
                    Action::Close { .. } => (cfg.syscall_base, Some(SyscallKind::Close)),
                    Action::FileRead { bytes, .. } => (
                        cfg.syscall_base + cfg.copy_cost(*bytes),
                        Some(SyscallKind::Read),
                    ),
                    Action::FileWrite { bytes, .. } => (
                        cfg.syscall_base + cfg.copy_cost(*bytes),
                        Some(SyscallKind::Write),
                    ),
                    Action::Sleep { .. } => (cfg.syscall_base, Some(SyscallKind::Sleep)),
                    Action::Spawn { .. } => (SimDuration::from_micros(50), Some(SyscallKind::Fork)),
                    Action::Exit => (cfg.syscall_base, Some(SyscallKind::Exit)),
                };
                return NextQuantum::Run {
                    kind: QuantumKind::Syscall(op),
                    work,
                    syscall,
                };
            }

            // Pending kernel→program work.
            let item_opt = self.nodes[i]
                .procs
                .get_mut(&pid)
                .expect("checked")
                .pending
                .pop_front();
            if let Some(work_item) = item_opt {
                let kernel_daemon = self.nodes[i]
                    .procs
                    .get(&pid)
                    .expect("checked")
                    .kernel_daemon;
                let decided = match work_item {
                    PendingWork::MsgReady(sock) => {
                        match self.nodes[i]
                            .sockets
                            .get(&sock)
                            .and_then(|s| s.peek_ready())
                        {
                            Some((msg, npackets)) => {
                                let cost = if kernel_daemon {
                                    cfg.syscall_base
                                } else {
                                    cfg.syscall_base
                                        + cfg.rx_deliver * npackets as u64
                                        + cfg.copy_cost(msg.bytes)
                                };
                                Some((cost, Some(SyscallKind::Recv)))
                            }
                            // Stale notification (socket closed or message
                            // already consumed): skip it and look again.
                            None => None,
                        }
                    }
                    PendingWork::Start
                    | PendingWork::Connected(_)
                    | PendingWork::IoDone(_)
                    | PendingWork::Timer(_) => Some((cfg.syscall_base, None)),
                };
                match decided {
                    Some((work, syscall)) => {
                        return NextQuantum::Run {
                            kind: QuantumKind::Deliver(work_item),
                            work,
                            syscall,
                        }
                    }
                    None => continue,
                }
            }

            // Nothing to do: block waiting for events.
            self.nodes[i].procs.get_mut(&pid).expect("checked").state =
                ProcState::Blocked(BlockReason::SocketRecv);
            self.emit_ev(
                node,
                EventPayload::ProcessBlock {
                    pid,
                    reason: BlockReason::SocketRecv,
                },
            );
            return NextQuantum::Blocked;
        }
    }

    /// QuantumEnd handler: account the work, apply the op/deliver effect,
    /// requeue or block the process, and dispatch the next quantum.
    fn quantum_end(&mut self, node: NodeId, now: SimTime) {
        let Some(rq) = self.nodes[node.0 as usize].running.take() else {
            return; // stale (cancelled) event
        };
        let pid = rq.pid;
        let work = rq.work;
        let kernel_daemon = self.nodes[node.0 as usize]
            .procs
            .get(&pid)
            .map(|p| p.kernel_daemon)
            .unwrap_or(false);

        match rq.kind {
            QuantumKind::Compute => {
                {
                    let n = &mut self.nodes[node.0 as usize];
                    let compute = work;
                    if kernel_daemon {
                        n.stats.cpu.kernel += compute;
                    } else {
                        n.stats.cpu.user += compute;
                    }
                    let proc = n.procs.get_mut(&pid).expect("running process exists");
                    if kernel_daemon {
                        proc.kernel_time += compute;
                    } else {
                        proc.user_time += compute;
                    }
                    proc.remaining_compute = proc.remaining_compute.saturating_sub(compute);
                    proc.state = ProcState::Runnable;
                }
                // Round-robin: preempted compute goes to the back; a
                // finished compute continues promptly at the front.
                let n = &mut self.nodes[node.0 as usize];
                let proc = n.procs.get(&pid).expect("still here");
                if proc.remaining_compute.is_zero() {
                    n.runq.push_front(pid);
                } else {
                    n.runq.push_back(pid);
                }
            }
            QuantumKind::Syscall(op) => {
                {
                    let n = &mut self.nodes[node.0 as usize];
                    n.stats.cpu.kernel += work;
                    let proc = n.procs.get_mut(&pid).expect("running process exists");
                    proc.kernel_time += work;
                    proc.state = ProcState::Runnable;
                }
                let syscall_kind = syscall_kind_of(&op);
                if let Some(kind) = syscall_kind {
                    self.emit_ev(
                        node,
                        EventPayload::SyscallExit {
                            pid,
                            kind,
                            kernel_time: work,
                        },
                    );
                }
                let blocked = self.apply_op(node, pid, op, now);
                if !blocked && !self.process_exited(node, pid) {
                    self.nodes[node.0 as usize].runq.push_front(pid);
                }
            }
            QuantumKind::Deliver(item) => {
                {
                    let n = &mut self.nodes[node.0 as usize];
                    n.stats.cpu.kernel += work;
                    let proc = n.procs.get_mut(&pid).expect("running process exists");
                    proc.kernel_time += work;
                    proc.state = ProcState::Runnable;
                }
                if matches!(item, PendingWork::MsgReady(_)) {
                    self.emit_ev(
                        node,
                        EventPayload::SyscallExit {
                            pid,
                            kind: SyscallKind::Recv,
                            kernel_time: work,
                        },
                    );
                }
                self.apply_deliver(node, pid, item, work, now);
                if !self.process_exited(node, pid) {
                    self.nodes[node.0 as usize].runq.push_front(pid);
                }
            }
        }
        self.try_dispatch(node, now);
    }

    // ------------------------------------------------------------------
    // Syscall effects
    // ------------------------------------------------------------------

    /// Applies a completed syscall op. Returns true if the process blocked.
    fn apply_op(&mut self, node: NodeId, pid: Pid, op: Action, now: SimTime) -> bool {
        match op {
            Action::Compute(_) => unreachable!("compute is not a syscall"),
            Action::Send {
                sock,
                bytes,
                msg_id,
                kind,
            } => {
                let flow = {
                    let n = &self.nodes[node.0 as usize];
                    match n.sockets.get(&sock) {
                        Some(s) => s.tx_flow(),
                        None => return false, // closed socket: send discarded
                    }
                };
                self.nodes[node.0 as usize].stats.bytes_sent += bytes;
                self.transmit_message(node, flow, msg_id, kind, bytes, Some(pid), now, false);
                false
            }
            Action::Listen { port } => {
                self.nodes[node.0 as usize].listeners.insert(port, pid);
                false
            }
            Action::Connect {
                sock,
                node: remote,
                port,
            } => {
                self.apply_connect(node, pid, sock, remote, port, now);
                false
            }
            Action::Close { sock } => {
                let n = &mut self.nodes[node.0 as usize];
                if let Some(s) = n.sockets.get_mut(&sock) {
                    s.closed = true;
                    let rx = s.rx_flow();
                    n.flows.remove(&rx);
                }
                false
            }
            Action::FileRead { file, bytes, token } => {
                self.file_io(node, pid, file, bytes, token, false, now)
            }
            Action::FileWrite {
                file,
                bytes,
                sync,
                token,
            } => {
                if sync {
                    self.file_io(node, pid, file, bytes, token, true, now)
                } else {
                    // Buffered write: page-cache copy already charged.
                    self.emit_file_open_once(node, pid, file);
                    self.emit_ev(node, EventPayload::FileWrite { pid, file, bytes });
                    self.nodes[node.0 as usize]
                        .procs
                        .get_mut(&pid)
                        .expect("process exists")
                        .pending
                        .push_back(PendingWork::IoDone(token));
                    false
                }
            }
            Action::Sleep { duration, token } => {
                self.block(node, pid, BlockReason::Sleep);
                self.queue
                    .schedule(now + duration, Ev::TimerFire { node, pid, token });
                true
            }
            Action::Spawn { program, name } => {
                let gid = self.nodes[node.0 as usize]
                    .procs
                    .get(&pid)
                    .map(|p| p.gid)
                    .unwrap_or(GroupId(0));
                self.spawn_with(node, &name, program, gid, false, Some(pid));
                false
            }
            Action::Exit => {
                self.apply_exit(node, pid);
                true
            }
        }
    }

    fn apply_connect(
        &mut self,
        node: NodeId,
        pid: Pid,
        sock: SocketId,
        remote: NodeId,
        port: Port,
        now: SimTime,
    ) {
        self.try_connect(node, pid, sock, remote, port, now, 0);
    }

    /// Attempts connection establishment; if nothing is listening yet the
    /// SYN is retried (like TCP SYN retransmission, with a short simulated
    /// timer), giving servers spawned in the same instant time to listen.
    #[allow(clippy::too_many_arguments)]
    fn try_connect(
        &mut self,
        node: NodeId,
        pid: Pid,
        sock: SocketId,
        remote: NodeId,
        port: Port,
        now: SimTime,
        attempt: u32,
    ) {
        let remote_ip = self.net.node_ip(remote);
        let remote_ep = EndPoint::new(remote_ip, port);
        let listener = self.nodes[remote.0 as usize].listeners.get(&port).copied();
        let Some(listener) = listener else {
            assert!(
                attempt < 10,
                "connect to {remote_ep}: nothing is listening after {attempt} SYN retries"
            );
            self.queue.schedule(
                now + SimDuration::from_millis(5),
                Ev::ConnRetry {
                    node,
                    pid,
                    sock,
                    remote,
                    port,
                    attempt: attempt + 1,
                },
            );
            return;
        };

        let cfg = self.costs(node);
        let local_ip = self.net.node_ip(node);
        let local_port = self.nodes[node.0 as usize].alloc_ephemeral();
        let local_ep = EndPoint::new(local_ip, local_port);

        // Local half.
        {
            let n = &mut self.nodes[node.0 as usize];
            let s = Socket::new(sock, pid, local_ep, remote_ep, cfg.socket_rx_bytes);
            n.flows.insert(s.rx_flow(), sock);
            n.sockets.insert(sock, s);
        }

        // Remote half.
        {
            let remote_cfg = self.costs(remote);
            let rn = &mut self.nodes[remote.0 as usize];
            let rsock = rn.alloc_sock();
            let s = Socket::new(
                rsock,
                listener,
                remote_ep,
                local_ep,
                remote_cfg.socket_rx_bytes,
            );
            rn.flows.insert(s.rx_flow(), rsock);
            rn.sockets.insert(rsock, s);
        }

        // Handshake latency before the client may send.
        let delay = self
            .net
            .estimated_rtt(node, remote)
            .unwrap_or(self.conn_setup_delay);
        self.queue
            .schedule(now + delay, Ev::ConnEstablished { node, pid, sock });
    }

    /// Synchronous file I/O: charge the disk and block the caller.
    #[allow(clippy::too_many_arguments)]
    fn file_io(
        &mut self,
        node: NodeId,
        pid: Pid,
        file: kprof::FileId,
        bytes: u64,
        token: u64,
        write: bool,
        now: SimTime,
    ) -> bool {
        self.emit_file_open_once(node, pid, file);
        if write {
            self.emit_ev(node, EventPayload::FileWrite { pid, file, bytes });
        } else {
            self.emit_ev(node, EventPayload::FileRead { pid, file, bytes });
        }
        let disk_id = kprof::DiskId(0);
        self.emit_ev(
            node,
            EventPayload::BlockIoStart {
                disk: disk_id,
                bytes,
                pid: Some(pid),
            },
        );
        let done = self.nodes[node.0 as usize].disk.submit(now, bytes);
        self.block(node, pid, BlockReason::DiskIo);
        self.queue.schedule(
            done,
            Ev::DiskDone {
                node,
                pid,
                token,
                bytes,
            },
        );
        true
    }

    fn emit_file_open_once(&mut self, node: NodeId, pid: Pid, file: kprof::FileId) {
        if self.nodes[node.0 as usize].opened.insert((pid, file)) {
            self.emit_ev(node, EventPayload::FileOpen { pid, file });
        }
    }

    fn apply_exit(&mut self, node: NodeId, pid: Pid) {
        {
            let n = &mut self.nodes[node.0 as usize];
            let socks: Vec<SocketId> = n
                .sockets
                .iter()
                .filter(|(_, s)| s.owner == pid)
                .map(|(id, _)| *id)
                .collect();
            for sid in socks {
                if let Some(s) = n.sockets.get_mut(&sid) {
                    s.closed = true;
                    let rx = s.rx_flow();
                    n.flows.remove(&rx);
                }
            }
            if let Some(p) = n.procs.get_mut(&pid) {
                p.state = ProcState::Exited;
                p.ops.clear();
                p.pending.clear();
                p.exited_at = Some(self.queue.now());
            }
        }
        self.emit_ev(node, EventPayload::ProcessExit { pid });
    }

    fn block(&mut self, node: NodeId, pid: Pid, reason: BlockReason) {
        if let Some(p) = self.nodes[node.0 as usize].procs.get_mut(&pid) {
            p.state = ProcState::Blocked(reason);
        }
        self.emit_ev(node, EventPayload::ProcessBlock { pid, reason });
    }

    fn wake(&mut self, node: NodeId, pid: Pid, now: SimTime) {
        let should = {
            let n = &mut self.nodes[node.0 as usize];
            match n.procs.get_mut(&pid) {
                Some(p) if matches!(p.state, ProcState::Blocked(_)) => {
                    p.state = ProcState::Runnable;
                    n.runq.push_back(pid);
                    true
                }
                _ => false,
            }
        };
        if should {
            self.emit_ev(node, EventPayload::ProcessWake { pid });
            self.try_dispatch(node, now);
        }
    }

    // ------------------------------------------------------------------
    // Deliver effects (program callbacks)
    // ------------------------------------------------------------------

    fn apply_deliver(
        &mut self,
        node: NodeId,
        pid: Pid,
        item: PendingWork,
        work: SimDuration,
        now: SimTime,
    ) {
        let callback = match item {
            PendingWork::Start => Some(Callback::Start),
            PendingWork::Connected(sock) => Some(Callback::Connected { sock }),
            PendingWork::IoDone(token) => Some(Callback::IoDone { token }),
            PendingWork::Timer(token) => Some(Callback::Timer { token }),
            PendingWork::MsgReady(sock) => {
                let taken = self.nodes[node.0 as usize]
                    .sockets
                    .get_mut(&sock)
                    .and_then(|s| s.take_ready());
                match taken {
                    Some((msg, packets, _first_enqueue)) => {
                        // The user copy: per-packet delivery events.
                        let kernel_daemon = self.nodes[node.0 as usize]
                            .procs
                            .get(&pid)
                            .map(|p| p.kernel_daemon)
                            .unwrap_or(false);
                        let flow = self.nodes[node.0 as usize]
                            .sockets
                            .get(&sock)
                            .map(|s| s.rx_flow());
                        if let Some(flow) = flow {
                            if !kernel_daemon {
                                let arm = self.arm_of(node, flow, Some(pid), msg.msg_id);
                                for (pkt_id, size) in &packets {
                                    self.emit_ev(
                                        node,
                                        EventPayload::Net {
                                            point: NetPoint::RxDeliverUser,
                                            flow,
                                            packet: *pkt_id,
                                            size: *size,
                                            pid: Some(pid),
                                            arm,
                                        },
                                    );
                                }
                            }
                        }
                        let n = &mut self.nodes[node.0 as usize];
                        n.stats.bytes_received += msg.bytes;
                        n.stats.messages_delivered += 1;
                        Some(Callback::Message { sock, msg })
                    }
                    None => None,
                }
            }
        };
        let _ = work;
        let _ = now;
        if let Some(cb) = callback {
            self.invoke_program(node, pid, cb);
        }
    }

    /// Runs a program callback, collecting the actions it queues.
    fn invoke_program(&mut self, node: NodeId, pid: Pid, cb: Callback) {
        let wall = self.wall(node);
        let n = &mut self.nodes[node.0 as usize];
        let Some(proc) = n.procs.get_mut(&pid) else {
            return;
        };
        let Some(mut program) = proc.program.take() else {
            return;
        };
        let mut rng = std::mem::replace(&mut proc.rng, SimRng::seed(0));
        let mut next_sock = n.next_sock;
        let mut next_msg = n.next_msg;
        let node_id = n.id;

        let mut actions = Vec::new();
        {
            let mut ctx = ProcCtx::new(
                &mut actions,
                &mut rng,
                wall,
                node_id,
                &mut next_sock,
                &mut next_msg,
            );
            match cb {
                Callback::Start => program.on_start(&mut ctx),
                Callback::Message { sock, msg } => program.on_message(&mut ctx, sock, msg),
                Callback::Connected { sock } => program.on_connected(&mut ctx, sock),
                Callback::IoDone { token } => program.on_io_done(&mut ctx, token),
                Callback::Timer { token } => program.on_timer(&mut ctx, token),
            }
        }

        let n = &mut self.nodes[node.0 as usize];
        n.next_sock = next_sock;
        n.next_msg = next_msg;
        if let Some(proc) = n.procs.get_mut(&pid) {
            proc.program = Some(program);
            proc.rng = rng;
            // Socket ids pre-allocated by connect() must exist before the
            // op is applied; apply_connect creates them, so just queue.
            proc.ops.extend(actions);
        }
    }

    // ------------------------------------------------------------------
    // Network paths
    // ------------------------------------------------------------------

    /// Segments and transmits an application message. `kernel` marks
    /// monitoring traffic (cost charged as monitor; no TxFromUser event).
    #[allow(clippy::too_many_arguments)]
    fn transmit_message(
        &mut self,
        node: NodeId,
        flow: FlowKey,
        msg_id: u64,
        kind: u32,
        bytes: u64,
        pid: Option<Pid>,
        now: SimTime,
        kernel: bool,
    ) {
        if self.down[node.0 as usize] {
            // A crashed node transmits nothing.
            return;
        }
        let Some(dst_node) = self.net.node_by_ip(flow.dst.ip) else {
            return;
        };
        let npackets = Packet::count_for_payload(bytes);
        let tag = PayloadTag::new(msg_id, kind, bytes);
        let arm = if kernel {
            None
        } else {
            self.arm_of(node, flow, pid, msg_id)
        };
        let mut remaining = bytes;
        if kernel {
            let cfg = self.costs(node);
            self.steal(node, now, cfg.tx_stack * npackets, CpuCat::Monitor);
        }
        for _ in 0..npackets {
            let payload = remaining.min(Packet::MAX_PAYLOAD as u64) as u32;
            remaining = remaining.saturating_sub(payload as u64);
            let packet = Packet {
                id: PacketId(self.next_packet),
                flow,
                size: payload + Packet::HEADER_BYTES,
                payload: tag,
            };
            self.next_packet += 1;
            if !kernel {
                self.emit_ev(
                    node,
                    EventPayload::Net {
                        point: NetPoint::TxFromUser,
                        flow,
                        packet: packet.id,
                        size: packet.size,
                        pid,
                        arm,
                    },
                );
            }
            self.emit_ev(
                node,
                EventPayload::Net {
                    point: NetPoint::TxDeviceQueue,
                    flow,
                    packet: packet.id,
                    size: packet.size,
                    pid,
                    arm,
                },
            );
            self.nodes[node.0 as usize].stats.packets_out += 1;

            if dst_node == node {
                // Loopback: deliver after a tiny fixed delay.
                self.queue.schedule(
                    now + SimDuration::from_micros(5),
                    Ev::PacketArrival { node, packet },
                );
                self.queue.schedule(now, Ev::NicTxDone { node, packet });
                self.nodes[node.0 as usize].tx_queue_bytes += packet.size as u64;
                continue;
            }

            match self
                .net
                .transmit_with_faults(now, node, dst_node, packet.size as u64)
                .expect("topology routes all app traffic")
            {
                NetOutcome::Sent {
                    departure,
                    arrivals,
                } => {
                    self.nodes[node.0 as usize].tx_queue_bytes += packet.size as u64;
                    self.queue
                        .schedule(departure, Ev::NicTxDone { node, packet });
                    // One arrival per surviving copy. An empty list is a
                    // silent in-flight loss: the sender paid the full
                    // transmit cost and learns nothing.
                    for arrival in arrivals {
                        self.queue.schedule(
                            arrival,
                            Ev::PacketArrival {
                                node: dst_node,
                                packet,
                            },
                        );
                    }
                }
                NetOutcome::QueueDrop => {
                    self.emit_ev(
                        node,
                        EventPayload::Net {
                            point: NetPoint::Drop,
                            flow,
                            packet: packet.id,
                            size: packet.size,
                            pid,
                            arm,
                        },
                    );
                }
            }
        }
    }

    fn nic_tx_done(&mut self, node: NodeId, packet: Packet, now: SimTime) {
        let arm = self.arm_of(node, packet.flow, None, packet.payload.msg_id);
        self.emit_ev(
            node,
            EventPayload::Net {
                point: NetPoint::TxNicDone,
                flow: packet.flow,
                packet: packet.id,
                size: packet.size,
                pid: None,
                arm,
            },
        );
        let cfg = self.costs(node);
        let waiters = {
            let n = &mut self.nodes[node.0 as usize];
            n.tx_queue_bytes = n.tx_queue_bytes.saturating_sub(packet.size as u64);
            if n.tx_queue_bytes < cfg.socket_tx_bytes / 2 && !n.tx_waiters.is_empty() {
                std::mem::take(&mut n.tx_waiters)
            } else {
                Vec::new()
            }
        };
        for pid in waiters {
            self.wake(node, pid, now);
        }
    }

    fn packet_arrival(&mut self, node: NodeId, packet: Packet, now: SimTime) {
        let cfg = self.costs(node);
        {
            let n = &mut self.nodes[node.0 as usize];
            n.stats.packets_in += 1;
            if n.rx_backlog >= cfg.rx_ring_packets {
                n.stats.ring_drops += 1;
                // NIC ring overflow: silently dropped by hardware — the
                // kernel never sees it, so no Kprof event fires. This is
                // the receive-livelock regime.
                return;
            }
            n.rx_backlog += 1;
        }
        let arm = self.arm_of(node, packet.flow, None, packet.payload.msg_id);
        self.emit_ev(
            node,
            EventPayload::Net {
                point: NetPoint::RxNic,
                flow: packet.flow,
                packet: packet.id,
                size: packet.size,
                pid: None,
                arm,
            },
        );
        self.steal(node, now, cfg.rx_irq, CpuCat::Irq);
        // Softirq protocol processing pipeline.
        let start = now.max(self.nodes[node.0 as usize].softirq_busy_until);
        let done = start + cfg.rx_stack;
        self.nodes[node.0 as usize].softirq_busy_until = done;
        self.steal(node, now, cfg.rx_stack, CpuCat::Irq);
        self.queue.schedule(done, Ev::RxStackDone { node, packet });
    }

    fn rx_stack_done(&mut self, node: NodeId, packet: Packet, now: SimTime) {
        self.nodes[node.0 as usize].rx_backlog =
            self.nodes[node.0 as usize].rx_backlog.saturating_sub(1);

        let flow = packet.flow;
        // 1. Established socket?
        if let Some(&sid) = self.nodes[node.0 as usize].flows.get(&flow) {
            let owner = self.nodes[node.0 as usize]
                .sockets
                .get(&sid)
                .map(|s| s.owner);
            let arm = self.arm_of(node, flow, owner, packet.payload.msg_id);
            self.emit_ev(
                node,
                EventPayload::Net {
                    point: NetPoint::RxSocketBuffer,
                    flow,
                    packet: packet.id,
                    size: packet.size,
                    pid: owner,
                    arm,
                },
            );
            let wall = self.wall(node);
            let n = &mut self.nodes[node.0 as usize];
            let Some(sock) = n.sockets.get_mut(&sid) else {
                return;
            };
            let ready_before = sock.ready_count();
            if !sock.offer(packet, wall) {
                n.stats.socket_drops += 1;
                self.emit_ev(
                    node,
                    EventPayload::Net {
                        point: NetPoint::Drop,
                        flow,
                        packet: packet.id,
                        size: packet.size,
                        pid: owner,
                        arm,
                    },
                );
                return;
            }
            let ready_after = n.sockets.get(&sid).expect("just offered").ready_count();
            if ready_after > ready_before {
                let owner = owner.expect("socket has owner");
                for _ in ready_before..ready_after {
                    if let Some(p) = n.procs.get_mut(&owner) {
                        p.pending.push_back(PendingWork::MsgReady(sid));
                    }
                }
                self.wake(node, owner, now);
            }
            return;
        }

        // 2. Kernel sink port?
        if self.nodes[node.0 as usize]
            .sink_ports
            .contains(&flow.dst.port)
        {
            self.sink_ingest(node, packet, now);
            return;
        }

        // 3. Listener without an established flow (data racing ahead of the
        //    connect bookkeeping, or connectionless sends): auto-accept.
        if let Some(&listener) = self.nodes[node.0 as usize].listeners.get(&flow.dst.port) {
            let cfg = self.costs(node);
            let n = &mut self.nodes[node.0 as usize];
            let sid = n.alloc_sock();
            let s = Socket::new(sid, listener, flow.dst, flow.src, cfg.socket_rx_bytes);
            n.flows.insert(flow, sid);
            n.sockets.insert(sid, s);
            // Re-run as an established flow.
            self.rx_stack_done(node, packet, now);
            return;
        }

        // 4. Nowhere to go.
        self.emit_ev(
            node,
            EventPayload::Net {
                point: NetPoint::Drop,
                flow,
                packet: packet.id,
                size: packet.size,
                pid: None,
                arm: None,
            },
        );
    }

    fn sink_ingest(&mut self, node: NodeId, packet: Packet, now: SimTime) {
        let flow = packet.flow;
        self.emit_ev(
            node,
            EventPayload::Net {
                point: NetPoint::RxSocketBuffer,
                flow,
                packet: packet.id,
                size: packet.size,
                pid: None,
                arm: None,
            },
        );
        let wall = self.wall(node);
        let completed = {
            let cfg = self.costs(node);
            let n = &mut self.nodes[node.0 as usize];
            let sock = n.sink_socks.entry(flow).or_insert_with(|| {
                Socket::new(
                    SocketId(u64::MAX),
                    Pid(0),
                    flow.dst,
                    flow.src,
                    cfg.socket_rx_bytes.max(16 * 1024 * 1024),
                )
            });
            if !sock.offer(packet, wall) {
                n.stats.socket_drops += 1;
                return;
            }
            let mut done = Vec::new();
            while let Some((msg, _pkts, _t)) = sock.take_ready() {
                done.push(msg);
            }
            done
        };
        for msg in completed {
            let data = self
                .inflight_data
                .get_mut(&(flow, msg.msg_id))
                .and_then(|v| {
                    if v.is_empty() {
                        None
                    } else {
                        Some(v.remove(0))
                    }
                })
                .unwrap_or_default();
            let key = (node, flow.dst.port);
            if let Some(mut sink) = self.sinks.remove(&key) {
                let out = sink.on_message(wall, node, flow.src, msg, data);
                self.sinks.insert(key, sink);
                self.apply_kernel_output(node, out, now);
            }
        }
    }

    fn apply_kernel_output(&mut self, node: NodeId, out: KernelOutput, now: SimTime) {
        self.steal(node, now, out.cost, CpuCat::Monitor);
        for send in out.sends {
            self.kernel_send(node, send.src_port, send.dst, send.kind, send.data);
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        if self.down[ev.target().0 as usize] {
            match ev {
                // Restarts (and only restarts) act on a down node.
                Ev::NodeRestart { node } => self.do_restart(node, now),
                // The NIC is powered off: packets addressed to a crashed
                // node vanish, observable only via the counter.
                Ev::PacketArrival { node, .. } => {
                    self.nodes[node.0 as usize].stats.crash_drops += 1;
                }
                // Everything else scheduled before the crash is stale.
                _ => {}
            }
            return;
        }
        match ev {
            Ev::Dispatch { node } => self.dispatch(node, now),
            Ev::QuantumEnd { node } => self.quantum_end(node, now),
            Ev::PacketArrival { node, packet } => self.packet_arrival(node, packet, now),
            Ev::RxStackDone { node, packet } => self.rx_stack_done(node, packet, now),
            Ev::NicTxDone { node, packet } => self.nic_tx_done(node, packet, now),
            Ev::DiskDone {
                node,
                pid,
                token,
                bytes,
            } => {
                self.emit_ev(
                    node,
                    EventPayload::BlockIoComplete {
                        disk: kprof::DiskId(0),
                        bytes,
                        pid: Some(pid),
                    },
                );
                if let Some(p) = self.nodes[node.0 as usize].procs.get_mut(&pid) {
                    p.pending.push_back(PendingWork::IoDone(token));
                }
                self.wake(node, pid, now);
            }
            Ev::TimerFire { node, pid, token } => {
                if let Some(p) = self.nodes[node.0 as usize].procs.get_mut(&pid) {
                    if p.is_exited() {
                        return;
                    }
                    p.pending.push_back(PendingWork::Timer(token));
                }
                self.wake(node, pid, now);
            }
            Ev::ConnRetry {
                node,
                pid,
                sock,
                remote,
                port,
                attempt,
            } => {
                self.try_connect(node, pid, sock, remote, port, now, attempt);
            }
            Ev::ConnEstablished { node, pid, sock } => {
                if let Some(p) = self.nodes[node.0 as usize].procs.get_mut(&pid) {
                    p.pending.push_back(PendingWork::Connected(sock));
                }
                self.wake(node, pid, now);
            }
            Ev::DaemonWake { node, analyzer } => {
                let wall = self.wall(node);
                if let Some(mut hook) = self.daemon_hooks.remove(&node) {
                    let out = {
                        let n = &mut self.nodes[node.0 as usize];
                        let stats = n.stats;
                        hook.on_wake(wall, node, analyzer, &mut n.kprof, &stats)
                    };
                    self.daemon_hooks.insert(node, hook);
                    if let Some(delay) = out.rearm_after {
                        self.queue.schedule(
                            now + delay,
                            Ev::DaemonWake {
                                node,
                                analyzer: None,
                            },
                        );
                    }
                    self.apply_kernel_output(node, out, now);
                }
            }
            Ev::NodeCrash { node } => self.do_crash(node, now),
            Ev::NodeRestart { node } => self.do_restart(node, now),
        }
    }

    fn costs(&self, node: NodeId) -> CostConfig {
        self.nodes[node.0 as usize].config.costs
    }
}

enum NextQuantum {
    Run {
        kind: QuantumKind,
        work: SimDuration,
        syscall: Option<SyscallKind>,
    },
    Blocked,
    Gone,
}

fn syscall_kind_of(op: &Action) -> Option<SyscallKind> {
    match op {
        Action::Compute(_) => None,
        Action::Send { .. } => Some(SyscallKind::Send),
        Action::Listen { .. } => Some(SyscallKind::Open),
        Action::Connect { .. } => Some(SyscallKind::Open),
        Action::Close { .. } => Some(SyscallKind::Close),
        Action::FileRead { .. } => Some(SyscallKind::Read),
        Action::FileWrite { .. } => Some(SyscallKind::Write),
        Action::Sleep { .. } => Some(SyscallKind::Sleep),
        Action::Spawn { .. } => Some(SyscallKind::Fork),
        Action::Exit => Some(SyscallKind::Exit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Message;
    use crate::programs::{BulkSender, ComputeLoop, EchoServer, OneShotSender, SinkServer};
    use kprof::{CountingAnalyzer, EventMask};

    fn two_nodes(seed: u64) -> World {
        WorldBuilder::new(seed)
            .node("a")
            .node("b")
            .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
            .build()
            .expect("valid topology")
    }

    #[test]
    fn one_shot_message_is_delivered() {
        let mut w = two_nodes(1);
        w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(80))));
        w.spawn(
            NodeId(0),
            "sender",
            Box::new(OneShotSender::new(NodeId(1), Port(80), 50_000)),
        );
        w.run_until(SimTime::from_secs(1));
        let stats = w.node_stats(NodeId(1));
        assert_eq!(stats.bytes_received, 50_000);
        assert_eq!(stats.messages_delivered, 1);
        assert!(stats.packets_in >= 35, "50 KB needs many packets");
        assert_eq!(w.node_stats(NodeId(0)).bytes_sent, 50_000);
    }

    #[test]
    fn echo_round_trip_completes() {
        struct Client {
            done: bool,
        }
        impl Program for Client {
            fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
                ctx.connect(NodeId(1), Port(80));
            }
            fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
                ctx.send(sock, 1000, 0);
            }
            fn on_message(&mut self, ctx: &mut ProcCtx<'_>, _sock: SocketId, msg: Message) {
                assert_eq!(msg.bytes, 200, "echo reply size");
                self.done = true;
                ctx.exit();
            }
        }
        let mut w = two_nodes(2);
        w.spawn(
            NodeId(1),
            "echo",
            Box::new(EchoServer::new(Port(80), 200, SimDuration::from_micros(50))),
        );
        let client = w.spawn(NodeId(0), "client", Box::new(Client { done: false }));
        w.run_until(SimTime::from_secs(1));
        assert!(w.process_exited(NodeId(0), client), "client got the reply");
        assert_eq!(w.node_stats(NodeId(0)).bytes_received, 200);
        assert_eq!(w.node_stats(NodeId(1)).bytes_received, 1000);
    }

    #[test]
    fn compute_loop_accumulates_user_time() {
        let mut w = two_nodes(3);
        let pid = w.spawn(
            NodeId(0),
            "burn",
            Box::new(ComputeLoop::new(
                SimDuration::from_millis(100),
                SimDuration::from_millis(10),
            )),
        );
        w.run_until(SimTime::from_secs(1));
        assert!(w.process_exited(NodeId(0), pid));
        let (user, _kernel) = w.process_times(NodeId(0), pid).unwrap();
        assert_eq!(user, SimDuration::from_millis(100));
        let stats = w.node_stats(NodeId(0));
        assert_eq!(stats.cpu.user, SimDuration::from_millis(100));
    }

    #[test]
    fn two_compute_processes_share_the_cpu_fairly() {
        let mut w = two_nodes(4);
        let a = w.spawn(
            NodeId(0),
            "a",
            Box::new(ComputeLoop::new(
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
            )),
        );
        let b = w.spawn(
            NodeId(0),
            "b",
            Box::new(ComputeLoop::new(
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
            )),
        );
        w.run_until(SimTime::from_secs(1));
        assert!(w.process_exited(NodeId(0), a));
        assert!(w.process_exited(NodeId(0), b));
        // Both ran to completion; total user time = 100ms and the node was
        // busy roughly 100ms (plus scheduling overhead).
        let stats = w.node_stats(NodeId(0));
        assert_eq!(stats.cpu.user, SimDuration::from_millis(100));
        assert!(stats.context_switches >= 4, "round-robin interleaving");
    }

    #[test]
    fn sync_file_write_blocks_for_disk_time() {
        struct Writer;
        impl Program for Writer {
            fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
                ctx.write_file(kprof::FileId(1), 1 << 20, true, 7);
            }
            fn on_io_done(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
                assert_eq!(token, 7);
                ctx.exit();
            }
        }
        let mut w = two_nodes(5);
        let pid = w.spawn(NodeId(0), "writer", Box::new(Writer));
        w.run_until(SimTime::from_secs(5));
        assert!(w.process_exited(NodeId(0), pid));
        let disk = w.disk(NodeId(0));
        assert_eq!(disk.requests(), 1);
        assert_eq!(disk.bytes(), 1 << 20);
        // 1 MB at ~55 MB/s plus seek: at least 18 ms of disk time passed.
        assert!(w.now() >= SimTime::from_millis(18), "now {}", w.now());
    }

    #[test]
    fn buffered_write_completes_without_disk() {
        struct Writer;
        impl Program for Writer {
            fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
                ctx.write_file(kprof::FileId(1), 1 << 20, false, 1);
            }
            fn on_io_done(&mut self, ctx: &mut ProcCtx<'_>, _token: u64) {
                ctx.exit();
            }
        }
        let mut w = two_nodes(6);
        let pid = w.spawn(NodeId(0), "writer", Box::new(Writer));
        w.run_until(SimTime::from_secs(1));
        assert!(w.process_exited(NodeId(0), pid));
        assert_eq!(w.disk(NodeId(0)).requests(), 0);
    }

    #[test]
    fn monitoring_disabled_has_negligible_overhead() {
        let mut w = two_nodes(7);
        w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(80))));
        w.spawn(
            NodeId(0),
            "sender",
            Box::new(OneShotSender::new(NodeId(1), Port(80), 100_000)),
        );
        w.run_until(SimTime::from_secs(1));
        let stats = w.node_stats(NodeId(1));
        // Suppressed hooks cost 5ns each; even hundreds of events stay
        // under a few microseconds.
        assert!(
            stats.cpu.monitor < SimDuration::from_micros(20),
            "monitor time {}",
            stats.cpu.monitor
        );
        assert!(w.kprof(NodeId(1)).stats().events_suppressed > 0);
        assert_eq!(w.kprof(NodeId(1)).stats().events_generated, 0);
    }

    #[test]
    fn monitoring_enabled_charges_overhead_and_counts_events() {
        let mut w = two_nodes(8);
        w.kprof_mut(NodeId(1))
            .register(Box::new(CountingAnalyzer::new(EventMask::ALL)));
        w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(80))));
        w.spawn(
            NodeId(0),
            "sender",
            Box::new(OneShotSender::new(NodeId(1), Port(80), 100_000)),
        );
        w.run_until(SimTime::from_secs(1));
        let stats = w.node_stats(NodeId(1));
        assert!(stats.cpu.monitor > SimDuration::from_micros(50));
        let ks = w.kprof(NodeId(1)).stats();
        assert!(ks.events_generated > 100, "events {}", ks.events_generated);
        assert_eq!(ks.events_delivered, ks.events_generated);
    }

    #[test]
    fn bulk_sender_approaches_line_rate() {
        let mut w = two_nodes(9);
        w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(5001))));
        w.spawn(
            NodeId(0),
            "iperf",
            Box::new(BulkSender::new(
                NodeId(1),
                Port(5001),
                64 * 1024,
                SimDuration::from_secs(1),
            )),
        );
        w.run_until(SimTime::from_secs(2));
        let received = w.node_stats(NodeId(1)).bytes_received;
        let mbps = received as f64 * 8.0 / 1e6;
        // An unpaced blast against a CPU-bound receiver: goodput lands at
        // roughly the receiver's drain rate (well below line rate once the
        // socket buffer fills and assemblies get shredded), but the node
        // must not collapse.
        assert!(mbps > 250.0, "goodput {mbps} Mbps");
        assert!(mbps < 1000.0, "goodput {mbps} Mbps cannot exceed line rate");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = |seed| {
            let mut w = two_nodes(seed);
            w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(5001))));
            w.spawn(
                NodeId(0),
                "iperf",
                Box::new(BulkSender::new(
                    NodeId(1),
                    Port(5001),
                    32 * 1024,
                    SimDuration::from_millis(200),
                )),
            );
            w.run_until(SimTime::from_secs(1));
            let s = w.node_stats(NodeId(1));
            (s.bytes_received, s.packets_in, s.context_switches)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn kernel_send_reaches_sink_with_data() {
        type Got = std::rc::Rc<std::cell::RefCell<Vec<(u32, Bytes)>>>;
        struct Recorder {
            got: Got,
        }
        impl KernelSink for Recorder {
            fn on_message(
                &mut self,
                _now: SimTime,
                _node: NodeId,
                _src: EndPoint,
                msg: Message,
                data: Bytes,
            ) -> KernelOutput {
                self.got.borrow_mut().push((msg.kind, data));
                KernelOutput {
                    cost: SimDuration::from_micros(2),
                    sends: Vec::new(),
                    rearm_after: None,
                }
            }
        }
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut w = two_nodes(10);
        w.install_sink(
            NodeId(1),
            Port(9999),
            Box::new(Recorder { got: got.clone() }),
        );
        let payload: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let dst = EndPoint::new(w.network().node_ip(NodeId(1)), Port(9999));
        w.kernel_send(NodeId(0), Port(9998), dst, 42, payload.clone());
        w.run_until(SimTime::from_secs(1));
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 42);
        assert_eq!(got[0].1, payload);
        // The monitoring traffic consumed real bandwidth.
        let (fwd, _rev) = w
            .network()
            .link_between(NodeId(0), NodeId(1))
            .unwrap()
            .bytes_carried();
        assert!(fwd >= 5000);
    }

    #[test]
    fn daemon_hook_wakes_on_buffer_full() {
        use kprof::{Analyzer, AnalyzerOutcome, Interest};

        /// Analyzer that reports buffer-full every 10 events.
        struct Chunky {
            n: u64,
        }
        impl Analyzer for Chunky {
            fn name(&self) -> &str {
                "chunky"
            }
            fn interest(&self) -> Interest {
                Interest::mask(EventMask::ALL)
            }
            fn on_event(&mut self, _e: &kprof::Event) -> AnalyzerOutcome {
                self.n += 1;
                AnalyzerOutcome {
                    cost: SimDuration::from_nanos(100),
                    buffer_full: self.n.is_multiple_of(10),
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        struct CountingHook {
            wakes: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl DaemonHook for CountingHook {
            fn on_wake(
                &mut self,
                _now: SimTime,
                _node: NodeId,
                analyzer: Option<AnalyzerId>,
                _kprof: &mut Kprof,
                _stats: &NodeStats,
            ) -> KernelOutput {
                assert!(analyzer.is_some());
                self.wakes.set(self.wakes.get() + 1);
                KernelOutput {
                    cost: SimDuration::from_micros(5),
                    sends: Vec::new(),
                    rearm_after: None,
                }
            }
        }

        let wakes = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut w = two_nodes(11);
        w.kprof_mut(NodeId(1)).register(Box::new(Chunky { n: 0 }));
        w.set_daemon_hook(
            NodeId(1),
            Box::new(CountingHook {
                wakes: wakes.clone(),
            }),
        );
        w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(80))));
        w.spawn(
            NodeId(0),
            "sender",
            Box::new(OneShotSender::new(NodeId(1), Port(80), 200_000)),
        );
        w.run_until(SimTime::from_secs(1));
        assert!(wakes.get() > 5, "daemon woke {} times", wakes.get());
    }

    #[test]
    fn tx_backpressure_blocks_and_wakes_sender() {
        let mut w = two_nodes(12);
        w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(5001))));
        w.spawn(
            NodeId(0),
            "blaster",
            Box::new(BulkSender::new(
                NodeId(1),
                Port(5001),
                128 * 1024,
                SimDuration::from_millis(50),
            )),
        );
        w.run_until(SimTime::from_secs(1));
        // With 128 KB bursts against a 256 KB device queue, the sender must
        // have blocked at least once and still completed.
        let delivered = w.node_stats(NodeId(1)).bytes_received;
        assert!(delivered > 1_000_000, "delivered {delivered}");
        assert_eq!(w.node_stats(NodeId(0)).ring_drops, 0);
    }

    #[test]
    fn process_groups_flow_into_kprof() {
        let mut w = two_nodes(13);
        let pid = w.spawn_in_group(
            NodeId(0),
            "grouped",
            Box::new(ComputeLoop::new(
                SimDuration::from_millis(1),
                SimDuration::from_millis(1),
            )),
            GroupId(9),
        );
        w.run_until(SimTime::from_millis(100));
        assert_eq!(
            w.kprof(NodeId(0)).group_of(pid),
            None,
            "exited: reaped from table"
        );
    }

    #[test]
    fn wall_clocks_differ_with_skew() {
        let mut w = WorldBuilder::new(14)
            .node("sync")
            .node_with(
                "skewed",
                NodeConfig::default(),
                ClockSpec {
                    offset_ns: 300_000,
                    drift_ppm: 0.0,
                },
            )
            .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
            .build()
            .unwrap();
        w.spawn(
            NodeId(0),
            "burn",
            Box::new(ComputeLoop::new(
                SimDuration::from_millis(5),
                SimDuration::from_millis(5),
            )),
        );
        w.run_until(SimTime::from_millis(50));
        let a = w.wall(NodeId(0));
        let b = w.wall(NodeId(1));
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(300));
    }

    #[test]
    fn sleeping_process_wakes_on_time() {
        struct Sleeper {
            woke_at: std::rc::Rc<std::cell::Cell<SimTime>>,
        }
        impl Program for Sleeper {
            fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
                ctx.sleep(SimDuration::from_millis(25), 1);
            }
            fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, _token: u64) {
                self.woke_at.set(ctx.now());
                ctx.exit();
            }
        }
        let woke = std::rc::Rc::new(std::cell::Cell::new(SimTime::ZERO));
        let mut w = two_nodes(15);
        w.spawn(
            NodeId(0),
            "sleeper",
            Box::new(Sleeper {
                woke_at: woke.clone(),
            }),
        );
        w.run_until(SimTime::from_secs(1));
        let t = woke.get();
        assert!(t >= SimTime::from_millis(25), "woke at {t}");
        assert!(t < SimTime::from_millis(26), "woke at {t}");
    }

    #[test]
    fn loopback_delivery_on_same_node() {
        let mut w = two_nodes(20);
        w.spawn(NodeId(0), "sink", Box::new(SinkServer::new(Port(80))));
        w.spawn(
            NodeId(0),
            "sender",
            Box::new(OneShotSender::new(NodeId(0), Port(80), 5_000)),
        );
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node_stats(NodeId(0)).bytes_received, 5_000);
    }

    #[test]
    fn degrade_disk_slows_new_requests() {
        struct TwoWrites {
            times: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
        }
        impl Program for TwoWrites {
            fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
                ctx.write_file(kprof::FileId(1), 64 * 1024, true, 1);
            }
            fn on_io_done(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
                self.times.borrow_mut().push(ctx.now());
                if token == 1 {
                    ctx.write_file(kprof::FileId(1), 64 * 1024, true, 2);
                } else {
                    ctx.exit();
                }
            }
        }
        let times = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut w = two_nodes(21);
        w.spawn(
            NodeId(0),
            "writer",
            Box::new(TwoWrites {
                times: times.clone(),
            }),
        );
        // Degrade immediately: both writes pay the degraded costs; compare
        // against a healthy run instead.
        let mut healthy = two_nodes(21);
        let healthy_times = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        healthy.spawn(
            NodeId(0),
            "writer",
            Box::new(TwoWrites {
                times: healthy_times.clone(),
            }),
        );
        w.degrade_disk(NodeId(0), 10.0);
        w.run_until(SimTime::from_secs(5));
        healthy.run_until(SimTime::from_secs(5));
        let slow = times.borrow()[0];
        let fast = healthy_times.borrow()[0];
        assert!(
            slow > fast + SimDuration::from_millis(20),
            "degraded {slow} vs healthy {fast}"
        );
    }

    #[test]
    fn arm_disabled_by_default_enabled_per_process() {
        use kprof::{Analyzer, AnalyzerOutcome, Interest};
        /// Captures the arm field of observed RxNic events.
        struct ArmProbe {
            seen: std::rc::Rc<std::cell::RefCell<Vec<Option<u64>>>>,
        }
        impl Analyzer for ArmProbe {
            fn name(&self) -> &str {
                "arm-probe"
            }
            fn interest(&self) -> Interest {
                Interest::mask(EventMask::NETWORK)
            }
            fn on_event(&mut self, e: &kprof::Event) -> AnalyzerOutcome {
                if let kprof::EventPayload::Net {
                    point: kprof::NetPoint::RxNic,
                    arm,
                    ..
                } = e.payload
                {
                    self.seen.borrow_mut().push(arm);
                }
                AnalyzerOutcome::default()
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        for enable in [false, true] {
            let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let mut w = two_nodes(22);
            w.kprof_mut(NodeId(1))
                .register(Box::new(ArmProbe { seen: seen.clone() }));
            let srv = w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(80))));
            w.spawn(
                NodeId(0),
                "sender",
                Box::new(OneShotSender::new(NodeId(1), Port(80), 3_000)),
            );
            if enable {
                assert!(w.enable_arm(NodeId(1), srv));
            }
            w.run_until(SimTime::from_secs(1));
            let seen = seen.borrow();
            assert!(!seen.is_empty());
            if enable {
                assert!(seen.iter().all(|a| a.is_some()), "tagged when opted in");
            } else {
                assert!(seen.iter().all(|a| a.is_none()), "black-box by default");
            }
        }
    }

    #[test]
    fn crash_kills_processes_then_restart_brings_node_back() {
        use simnet::FaultPlan;
        let plan = FaultPlan::default().with_crash(
            NodeId(1),
            SimTime::from_millis(50),
            Some(SimTime::from_millis(200)),
        );
        let mut w = WorldBuilder::new(30)
            .node("a")
            .node("b")
            .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
            .faults(plan)
            .build()
            .unwrap();
        let sink = w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(80))));
        w.spawn(
            NodeId(0),
            "blaster",
            Box::new(BulkSender::new(
                NodeId(1),
                Port(80),
                32 * 1024,
                SimDuration::from_millis(150),
            )),
        );
        w.run_until(SimTime::from_millis(100));
        assert!(w.node_is_down(NodeId(1)), "crashed at 50ms");
        assert!(w.process_exited(NodeId(1), sink), "fail-stop killed it");
        assert!(
            w.node_stats(NodeId(1)).crash_drops > 0,
            "in-flight packets to a dead node are counted"
        );
        w.run_until(SimTime::from_secs(1));
        assert!(!w.node_is_down(NodeId(1)), "restarted at 200ms");
    }

    #[test]
    fn fault_injection_is_lossy_and_replays_bit_identically() {
        use simnet::{FaultPlan, LinkFaults};
        let run = || {
            let plan = FaultPlan::default().with_default_link(LinkFaults::lossy(0.05));
            let mut w = WorldBuilder::new(31)
                .node("a")
                .node("b")
                .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
                .faults(plan)
                .build()
                .unwrap();
            w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(80))));
            w.spawn(
                NodeId(0),
                "sender",
                Box::new(OneShotSender::new(NodeId(1), Port(80), 200_000)),
            );
            w.run_until(SimTime::from_secs(1));
            let s = w.node_stats(NodeId(1));
            let f = w.network().fault_stats();
            (s.bytes_received, s.packets_in, f.injected_losses)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same plan, same outcome");
        assert!(a.2 > 0, "5% loss over ~140 packets must hit at least once");
        let no_faults = {
            let mut w = two_nodes(31);
            w.spawn(NodeId(1), "sink", Box::new(SinkServer::new(Port(80))));
            w.spawn(
                NodeId(0),
                "sender",
                Box::new(OneShotSender::new(NodeId(1), Port(80), 200_000)),
            );
            w.run_until(SimTime::from_secs(1));
            w.node_stats(NodeId(1)).packets_in
        };
        assert!(a.1 < no_faults, "loss reduced arrivals");
    }

    #[test]
    fn spawn_from_program_creates_child() {
        struct Parent;
        impl Program for Parent {
            fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
                ctx.spawn(
                    "child",
                    Box::new(ComputeLoop::new(
                        SimDuration::from_millis(2),
                        SimDuration::from_millis(2),
                    )),
                );
                ctx.exit();
            }
        }
        let mut w = two_nodes(16);
        w.spawn(NodeId(0), "parent", Box::new(Parent));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(
            w.node_stats(NodeId(0)).cpu.user,
            SimDuration::from_millis(2),
            "child ran"
        );
    }
}
