//! Kernel process table entries.

use std::collections::VecDeque;

use kprof::{BlockReason, GroupId, Pid};
use simcore::{SimDuration, SimRng};

use crate::program::{Action, Program};
use crate::SocketId;

/// Scheduler-visible process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// On a run queue.
    Runnable,
    /// Currently on a CPU.
    Running,
    /// Off the run queues, waiting.
    Blocked(BlockReason),
    /// Terminated (awaiting reaping).
    Exited,
}

/// Kernel-side record of work awaiting delivery to the program. Message
/// payloads are resolved lazily at delivery time (the data sits in the
/// socket buffer until the process actually `recv`s it — that is what
/// makes kernel-buffer queueing time observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingWork {
    /// Initial activation.
    Start,
    /// A socket has (at least) one complete message ready.
    MsgReady(SocketId),
    /// A connect completed.
    Connected(SocketId),
    /// A file operation completed.
    IoDone(u64),
    /// A timer fired.
    Timer(u64),
}

/// A process: program + kernel bookkeeping.
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Process group (the paper's predicate dimension).
    pub gid: GroupId,
    /// Diagnostic name.
    pub name: String,
    /// Scheduler state.
    pub state: ProcState,
    /// The application logic. Taken out while a callback runs.
    pub program: Option<Box<dyn Program>>,
    /// Kernel operations queued by the program, executed in order.
    pub ops: VecDeque<Action>,
    /// Kernel-to-program work awaiting delivery.
    pub pending: VecDeque<PendingWork>,
    /// Private deterministic random stream.
    pub rng: SimRng,
    /// Cumulative user-mode CPU time.
    pub user_time: SimDuration,
    /// Cumulative kernel-mode CPU time (syscalls executed on its behalf).
    pub kernel_time: SimDuration,
    /// If true, this process models a kernel daemon (like the in-kernel
    /// NFS server): all its CPU time is accounted as kernel time and its
    /// message handling never pays the user-copy step.
    pub kernel_daemon: bool,
    /// Sockets blocked on tx backpressure resume sending this action when
    /// woken (the un-finished send is re-queued at the front).
    pub remaining_compute: SimDuration,
    /// When the process exited, if it has.
    pub exited_at: Option<simcore::SimTime>,
    /// Whether the application opted into ARM-style request tagging: its
    /// network events carry the application message id as a correlator.
    /// Off by default (SysProf is a black-box monitor).
    pub arm_enabled: bool,
}

impl Process {
    /// Creates a new runnable process with [`PendingWork::Start`] queued.
    pub fn new(
        pid: Pid,
        gid: GroupId,
        name: String,
        program: Box<dyn Program>,
        rng: SimRng,
    ) -> Self {
        let mut pending = VecDeque::new();
        pending.push_back(PendingWork::Start);
        Process {
            pid,
            gid,
            name,
            state: ProcState::Runnable,
            program: Some(program),
            ops: VecDeque::new(),
            pending,
            rng,
            user_time: SimDuration::ZERO,
            kernel_time: SimDuration::ZERO,
            kernel_daemon: false,
            remaining_compute: SimDuration::ZERO,
            exited_at: None,
            arm_enabled: false,
        }
    }

    /// Whether the process has nothing to do and should block waiting for
    /// events (the event-driven server's `epoll_wait`).
    pub fn is_idle(&self) -> bool {
        self.ops.is_empty() && self.pending.is_empty() && self.remaining_compute.is_zero()
    }

    /// True if the process has exited.
    pub fn is_exited(&self) -> bool {
        matches!(self.state, ProcState::Exited)
    }
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("state", &self.state)
            .field("ops", &self.ops.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProcCtx;

    struct Nop;
    impl Program for Nop {
        fn on_start(&mut self, _ctx: &mut ProcCtx<'_>) {}
    }

    #[test]
    fn new_process_has_start_pending() {
        let p = Process::new(
            Pid(1),
            GroupId(0),
            "t".into(),
            Box::new(Nop),
            SimRng::seed(0),
        );
        assert_eq!(p.state, ProcState::Runnable);
        assert_eq!(p.pending.len(), 1);
        assert!(!p.is_idle());
        assert!(!p.is_exited());
    }

    #[test]
    fn idle_after_draining() {
        let mut p = Process::new(
            Pid(1),
            GroupId(0),
            "t".into(),
            Box::new(Nop),
            SimRng::seed(0),
        );
        p.pending.clear();
        assert!(p.is_idle());
        p.remaining_compute = SimDuration::from_micros(1);
        assert!(!p.is_idle());
    }
}
