//! The block-device model: seek + transfer service times, FIFO queueing.
//!
//! The back-end NFS servers in the §3.2 experiment are disk-bound; their
//! order-of-magnitude-higher per-interaction kernel time (Figure 5) is
//! produced by this queue.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Static parameters of a disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Average positioning (seek + rotational) time per request.
    pub seek: SimDuration,
    /// Sustained transfer rate in bytes per second.
    pub transfer_bps: u64,
    /// Fixed controller/driver overhead per request.
    pub overhead: SimDuration,
}

impl Default for DiskSpec {
    fn default() -> Self {
        // A ~2005 7200rpm SATA drive.
        DiskSpec {
            seek: SimDuration::from_millis(8),
            transfer_bps: 55_000_000,
            overhead: SimDuration::from_micros(200),
        }
    }
}

impl DiskSpec {
    /// Service time for one request of `bytes` (no queueing).
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        let transfer_ns = (bytes as u128 * 1_000_000_000 / self.transfer_bps.max(1) as u128) as u64;
        self.seek + self.overhead + SimDuration::from_nanos(transfer_ns)
    }
}

/// A disk with a FIFO request queue, modeled by a busy-until horizon.
#[derive(Debug, Clone)]
pub struct Disk {
    spec: DiskSpec,
    busy_until: SimTime,
    requests: u64,
    bytes: u64,
    busy_time: SimDuration,
}

impl Disk {
    /// Creates an idle disk.
    pub fn new(spec: DiskSpec) -> Self {
        Disk {
            spec,
            busy_until: SimTime::ZERO,
            requests: 0,
            bytes: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// The disk parameters.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// Replaces the disk's service parameters at runtime (fault
    /// injection: a degrading drive, a failing controller). Queued
    /// requests already admitted keep their old completion times; new
    /// submissions pay the new costs.
    pub fn set_spec(&mut self, spec: DiskSpec) {
        self.spec = spec;
    }

    /// Submits a request at `now`; returns when it completes (after all
    /// previously queued requests).
    pub fn submit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let service = self.spec.service_time(bytes);
        self.busy_until = start + service;
        self.requests += 1;
        self.bytes += bytes;
        self.busy_time += service;
        self.busy_until
    }

    /// Outstanding queue delay as of `now` (how long a new request would
    /// wait before service starts).
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Total requests ever submitted.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total bytes ever transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Cumulative time the disk has spent servicing requests.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn service_time_includes_all_parts() {
        let spec = DiskSpec {
            seek: SimDuration::from_millis(5),
            transfer_bps: 1_000_000, // 1 MB/s: easy math
            overhead: SimDuration::from_micros(100),
        };
        // 1 MB at 1 MB/s = 1 s transfer.
        let t = spec.service_time(1_000_000);
        assert_eq!(
            t,
            SimDuration::from_millis(5) + SimDuration::from_micros(100) + SimDuration::from_secs(1)
        );
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let mut disk = Disk::new(DiskSpec::default());
        let t1 = disk.submit(SimTime::ZERO, 4096);
        let t2 = disk.submit(SimTime::ZERO, 4096);
        assert!(t2 > t1);
        assert_eq!((t2 - t1), DiskSpec::default().service_time(4096));
        assert_eq!(disk.requests(), 2);
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut disk = Disk::new(DiskSpec::default());
        let t1 = disk.submit(SimTime::ZERO, 4096);
        let later = t1 + SimDuration::from_secs(1);
        let t2 = disk.submit(later, 4096);
        assert_eq!(t2 - later, DiskSpec::default().service_time(4096));
        assert_eq!(disk.queue_delay(t2), SimDuration::ZERO);
    }

    proptest! {
        /// Completions are monotone in submission order.
        #[test]
        fn prop_completions_monotone(sizes in proptest::collection::vec(512u64..1_000_000, 1..50)) {
            let mut disk = Disk::new(DiskSpec::default());
            let mut last = SimTime::ZERO;
            for (i, &s) in sizes.iter().enumerate() {
                let done = disk.submit(SimTime::from_millis(i as u64), s);
                prop_assert!(done >= last);
                last = done;
            }
        }
    }
}
