//! The application programming model: event-driven programs issuing
//! syscall-like actions.
//!
//! A [`Program`] is a state machine. The kernel invokes its callbacks
//! (start, message delivery, I/O completion, timer) while the process
//! runs; the program responds by queuing [`Action`]s through [`ProcCtx`].
//! Actions execute as kernel operations with realistic costs when the
//! process is scheduled.
//!
//! Programs never touch the monitoring layer, the network, or other
//! processes directly — everything flows through kernel abstractions,
//! which is what lets Kprof observe all of it.

use kprof::FileId;
use simcore::{NodeId, SimDuration, SimRng};
use simnet::{PayloadTag, Port};

use crate::SocketId;

/// A fully reassembled application message, as delivered by `recv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sender-assigned message id (application framing).
    pub msg_id: u64,
    /// Sender-assigned kind discriminant.
    pub kind: u32,
    /// Payload length in bytes.
    pub bytes: u64,
}

impl Message {
    /// The wire tag corresponding to this message.
    pub fn tag(&self) -> PayloadTag {
        PayloadTag::new(self.msg_id, self.kind, self.bytes)
    }
}

/// Kernel-to-program callbacks, delivered in order while the process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callback {
    /// First activation after spawn.
    Start,
    /// A complete message arrived on a socket.
    Message {
        /// Receiving socket.
        sock: SocketId,
        /// The reassembled message.
        msg: Message,
    },
    /// A connection requested via [`ProcCtx::connect`] is established and
    /// the socket is writable.
    Connected {
        /// The new socket.
        sock: SocketId,
    },
    /// A file operation issued with this token completed.
    IoDone {
        /// Caller-chosen token.
        token: u64,
    },
    /// A timer fired.
    Timer {
        /// Caller-chosen token.
        token: u64,
    },
}

/// Operations a program may request; each becomes kernel work with a cost.
pub enum Action {
    /// Spin the CPU at user level for the given time.
    Compute(SimDuration),
    /// Send an application message on a socket (`send` syscall; may block
    /// on transmit-buffer backpressure).
    Send {
        /// Socket to send on.
        sock: SocketId,
        /// Payload length.
        bytes: u64,
        /// Message id for the receiver's reassembly.
        msg_id: u64,
        /// Message kind for the receiver's dispatch.
        kind: u32,
    },
    /// Start listening on a port; inbound flows to it auto-accept.
    Listen {
        /// Port to listen on.
        port: Port,
    },
    /// Open a connection to a remote listener. Completion is signalled by
    /// [`Callback::Connected`] carrying the pre-assigned socket id.
    Connect {
        /// Pre-assigned local socket id (returned by [`ProcCtx::connect`]).
        sock: SocketId,
        /// Remote node.
        node: NodeId,
        /// Remote listening port.
        port: Port,
    },
    /// Close a socket.
    Close {
        /// Socket to close.
        sock: SocketId,
    },
    /// Read from a file (blocks the process for the disk service time).
    FileRead {
        /// File to read.
        file: FileId,
        /// Bytes to read.
        bytes: u64,
        /// Completion token.
        token: u64,
    },
    /// Write to a file. `sync` writes block until the disk completes (NFS
    /// v2 server semantics); buffered writes only pay the copy.
    FileWrite {
        /// File to write.
        file: FileId,
        /// Bytes to write.
        bytes: u64,
        /// Whether to wait for stable storage.
        sync: bool,
        /// Completion token.
        token: u64,
    },
    /// Sleep for a duration, then receive [`Callback::Timer`].
    Sleep {
        /// How long.
        duration: SimDuration,
        /// Completion token.
        token: u64,
    },
    /// Spawn a child process running `program` on the same node.
    Spawn {
        /// The child's program.
        program: Box<dyn Program>,
        /// The child's name (diagnostics).
        name: String,
    },
    /// Terminate this process.
    Exit,
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Compute(d) => write!(f, "Compute({d})"),
            Action::Send {
                sock,
                bytes,
                msg_id,
                kind,
            } => {
                write!(f, "Send {{ {sock}, {bytes}B, msg {msg_id}, kind {kind} }}")
            }
            Action::Listen { port } => write!(f, "Listen {{ :{port} }}"),
            Action::Connect { sock, node, port } => {
                write!(f, "Connect {{ {sock} -> {node}:{port} }}")
            }
            Action::Close { sock } => write!(f, "Close {{ {sock} }}"),
            Action::FileRead { file, bytes, token } => {
                write!(f, "FileRead {{ {file}, {bytes}B, token {token} }}")
            }
            Action::FileWrite {
                file,
                bytes,
                sync,
                token,
            } => {
                write!(
                    f,
                    "FileWrite {{ {file}, {bytes}B, sync {sync}, token {token} }}"
                )
            }
            Action::Sleep { duration, token } => {
                write!(f, "Sleep {{ {duration}, token {token} }}")
            }
            Action::Spawn { name, .. } => write!(f, "Spawn {{ {name:?} }}"),
            Action::Exit => f.write_str("Exit"),
        }
    }
}

/// The syscall surface handed to program callbacks.
///
/// Methods queue [`Action`]s; the kernel executes them (with costs,
/// blocking, instrumentation) after the callback returns, in order.
pub struct ProcCtx<'a> {
    actions: &'a mut Vec<Action>,
    rng: &'a mut SimRng,
    now_wall: simcore::SimTime,
    node: NodeId,
    next_sock: &'a mut u64,
    next_msg: &'a mut u64,
}

impl<'a> ProcCtx<'a> {
    pub(crate) fn new(
        actions: &'a mut Vec<Action>,
        rng: &'a mut SimRng,
        now_wall: simcore::SimTime,
        node: NodeId,
        next_sock: &'a mut u64,
        next_msg: &'a mut u64,
    ) -> Self {
        ProcCtx {
            actions,
            rng,
            now_wall,
            node,
            next_sock,
            next_msg,
        }
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node-local wall-clock time (what `gettimeofday` would return).
    pub fn now(&self) -> simcore::SimTime {
        self.now_wall
    }

    /// The process's private random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Burns CPU at user level.
    pub fn compute(&mut self, duration: SimDuration) {
        self.actions.push(Action::Compute(duration));
    }

    /// Sends an application message; returns the message id the receiver
    /// will see.
    pub fn send(&mut self, sock: SocketId, bytes: u64, kind: u32) -> u64 {
        let msg_id = *self.next_msg;
        *self.next_msg += 1;
        self.actions.push(Action::Send {
            sock,
            bytes,
            msg_id,
            kind,
        });
        msg_id
    }

    /// Sends a reply correlated to a request the application protocol
    /// already knows about (reuses the caller-supplied message id).
    pub fn send_with_id(&mut self, sock: SocketId, bytes: u64, kind: u32, msg_id: u64) {
        self.actions.push(Action::Send {
            sock,
            bytes,
            msg_id,
            kind,
        });
    }

    /// Starts listening on `port`.
    pub fn listen(&mut self, port: Port) {
        self.actions.push(Action::Listen { port });
    }

    /// Opens a connection to `node:port`; the returned socket id becomes
    /// usable when [`Callback::Connected`] arrives.
    pub fn connect(&mut self, node: NodeId, port: Port) -> SocketId {
        let sock = SocketId(*self.next_sock);
        *self.next_sock += 1;
        self.actions.push(Action::Connect { sock, node, port });
        sock
    }

    /// Closes a socket.
    pub fn close(&mut self, sock: SocketId) {
        self.actions.push(Action::Close { sock });
    }

    /// Reads from a file; [`Callback::IoDone`] carries `token` when the
    /// data is in memory.
    pub fn read_file(&mut self, file: FileId, bytes: u64, token: u64) {
        self.actions.push(Action::FileRead { file, bytes, token });
    }

    /// Writes to a file. Synchronous writes block until stable.
    pub fn write_file(&mut self, file: FileId, bytes: u64, sync: bool, token: u64) {
        self.actions.push(Action::FileWrite {
            file,
            bytes,
            sync,
            token,
        });
    }

    /// Sleeps; [`Callback::Timer`] carries `token` on expiry.
    pub fn sleep(&mut self, duration: SimDuration, token: u64) {
        self.actions.push(Action::Sleep { duration, token });
    }

    /// Spawns a child process on this node.
    pub fn spawn(&mut self, name: &str, program: Box<dyn Program>) {
        self.actions.push(Action::Spawn {
            program,
            name: name.to_owned(),
        });
    }

    /// Terminates this process after pending actions complete.
    pub fn exit(&mut self) {
        self.actions.push(Action::Exit);
    }
}

/// An application: a state machine the kernel drives.
///
/// All callbacks run "in process context" — the process is scheduled, the
/// callback's decisions are charged as the enclosing syscall's user/kernel
/// time. Callbacks must not loop forever; they queue actions and return.
pub trait Program {
    /// Called once when the process first runs.
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>);

    /// Called when a complete application message has been copied to user
    /// space.
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        let _ = (ctx, sock, msg);
    }

    /// Called when a connection opened with [`ProcCtx::connect`] is ready.
    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        let _ = (ctx, sock);
    }

    /// Called when a file operation completes.
    fn on_io_done(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called when a timer fires.
    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    #[test]
    fn ctx_queues_actions_in_order() {
        let mut actions = Vec::new();
        let mut rng = SimRng::seed(1);
        let mut next_sock = 10u64;
        let mut next_msg = 100u64;
        let mut ctx = ProcCtx::new(
            &mut actions,
            &mut rng,
            SimTime::from_micros(5),
            NodeId(3),
            &mut next_sock,
            &mut next_msg,
        );
        assert_eq!(ctx.node(), NodeId(3));
        assert_eq!(ctx.now(), SimTime::from_micros(5));
        ctx.compute(SimDuration::from_micros(10));
        let s = ctx.connect(NodeId(1), Port(80));
        assert_eq!(s, SocketId(10));
        let id = ctx.send(s, 2048, 7);
        assert_eq!(id, 100);
        ctx.exit();
        assert_eq!(actions.len(), 4);
        assert!(matches!(actions[0], Action::Compute(_)));
        assert!(matches!(
            actions[1],
            Action::Connect {
                sock: SocketId(10),
                ..
            }
        ));
        assert!(matches!(
            actions[2],
            Action::Send {
                bytes: 2048,
                msg_id: 100,
                kind: 7,
                ..
            }
        ));
        assert!(matches!(actions[3], Action::Exit));
        assert_eq!(next_sock, 11);
        assert_eq!(next_msg, 101);
    }

    #[test]
    fn message_tag_round_trip() {
        let m = Message {
            msg_id: 9,
            kind: 2,
            bytes: 512,
        };
        let t = m.tag();
        assert_eq!(t.msg_id, 9);
        assert_eq!(t.kind, 2);
        assert_eq!(t.total_bytes, 512);
    }
}
