//! A discrete-event simulated operating system kernel, instrumented with
//! [`kprof`] hooks at every point the SysProf paper lists.
//!
//! The paper patches Linux 2.4.19 with static instrumentation. This crate
//! is the substitute substrate: per-node kernels with
//!
//! * an event-driven **process model** ([`Program`], [`ProcCtx`]) — apps
//!   are state machines reacting to messages, timers and I/O completions,
//! * a **CPU scheduler** (round-robin, timeslices, context-switch costs,
//!   interrupt stealing),
//! * a **network stack** (NIC rx interrupts → softirq protocol processing
//!   → socket receive buffers → user copy; the reverse on tx), with every
//!   step charged CPU time and emitting the corresponding Kprof event,
//! * a **VFS and block-device model** (synchronous and buffered writes,
//!   seek + transfer disk service times, FIFO device queues),
//! * **monitoring perturbation**: every Kprof emission's cost is charged
//!   to the node's CPU, so enabling finer-grained monitoring measurably
//!   slows the monitored system — the central trade-off the paper studies.
//!
//! The top-level entry point is [`World`]: build a topology, spawn
//! programs, run, inspect.
//!
//! # Example
//!
//! ```
//! use simcore::{NodeId, SimTime};
//! use simnet::LinkSpec;
//! use simos::{WorldBuilder, programs::{SinkServer, OneShotSender}};
//!
//! let mut world = WorldBuilder::new(42)
//!     .node("client")
//!     .node("server")
//!     .link(NodeId(0), NodeId(1), LinkSpec::gigabit_lan())
//!     .build()
//!     .expect("valid topology");
//! world.spawn(NodeId(1), "server", Box::new(SinkServer::new(simnet::Port(80))));
//! world.spawn(
//!     NodeId(0),
//!     "client",
//!     Box::new(OneShotSender::new(NodeId(1), simnet::Port(80), 10_000)),
//! );
//! world.run_until(SimTime::from_secs(1));
//! assert!(world.node_stats(NodeId(1)).bytes_received > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod disk;
mod node;
mod process;
mod program;
pub mod programs;
mod socket;
mod world;

pub use bytes::Bytes;
pub use config::{CostConfig, NodeConfig};
pub use disk::{Disk, DiskSpec};
pub use node::{CpuUsage, NodeStats};
pub use process::{PendingWork, ProcState, Process};
pub use program::{Action, Callback, Message, ProcCtx, Program};
pub use socket::{Socket, SocketId};
pub use world::{DaemonHook, KernelOutput, KernelSend, KernelSink, World, WorldBuilder};
