//! The SysProf controller: runtime regulation of monitoring granularity.
//!
//! "The SysProf controller regulates the granularity and the amounts of
//! information monitored and analyzed by SysProf. It can instruct the
//! LPAs to collect statistics for some client class rather than for
//! individual interactions. It can change the sizes of internal LPA
//! buffers. It provides a management interface for SysProf." (§2)

use kprof::{AnalyzerId, EventMask};
use simcore::NodeId;
use simos::World;

use crate::lpa::{Lpa, LpaConfig};

/// Monitoring granularity levels, coarse → fine. Each level trades
/// diagnostic detail against perturbation (the "<1% … >10%" range of
/// §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorLevel {
    /// Monitoring disabled: instrumentation points cost only the
    /// disabled-hook branch.
    Off,
    /// Per-class aggregates only; network events, no scheduling
    /// attribution, nothing staged per interaction.
    ClassAggregates,
    /// Per-interaction records with network events only (no user/blocked
    /// attribution).
    Interactions,
    /// Per-interaction records with full scheduling attribution.
    Full,
}

/// The management interface. Stateless: every method applies a change to
/// a node's monitoring configuration through the world.
#[derive(Debug, Clone, Copy, Default)]
pub struct Controller;

impl Controller {
    /// Creates a controller.
    pub fn new() -> Self {
        Controller
    }

    /// Applies a monitoring level to a node's LPA. Returns false if the
    /// analyzer id is not an LPA on that node.
    pub fn set_level(
        &self,
        world: &mut World,
        node: NodeId,
        lpa: AnalyzerId,
        level: MonitorLevel,
    ) -> bool {
        let kprof = world.kprof_mut(node);
        match level {
            MonitorLevel::Off => kprof.set_active(lpa, false),
            MonitorLevel::ClassAggregates | MonitorLevel::Interactions | MonitorLevel::Full => {
                let ok = {
                    let Some(l) = kprof.analyzer_as_mut::<Lpa>(lpa) else {
                        return false;
                    };
                    let mut cfg = l.config().clone();
                    cfg.class_only = level == MonitorLevel::ClassAggregates;
                    cfg.track_scheduling = level == MonitorLevel::Full;
                    l.reconfigure(cfg);
                    true
                };
                ok && kprof.set_active(lpa, true) && kprof.update_interest(lpa)
            }
        }
    }

    /// Changes the LPA's buffer/window size ("it can change the sizes of
    /// internal LPA buffers"). Returns false if the analyzer is not an
    /// LPA.
    pub fn set_window(
        &self,
        world: &mut World,
        node: NodeId,
        lpa: AnalyzerId,
        window: usize,
    ) -> bool {
        let Some(l) = world.kprof_mut(node).analyzer_as_mut::<Lpa>(lpa) else {
            return false;
        };
        let mut cfg = l.config().clone();
        cfg.window = window.max(1);
        l.reconfigure(cfg);
        true
    }

    /// Restricts the LPA to specific service ports (predicate pruning),
    /// or clears the restriction with `None`.
    pub fn set_service_ports(
        &self,
        world: &mut World,
        node: NodeId,
        lpa: AnalyzerId,
        ports: Option<Vec<simnet::Port>>,
    ) -> bool {
        let Some(l) = world.kprof_mut(node).analyzer_as_mut::<Lpa>(lpa) else {
            return false;
        };
        let mut cfg = l.config().clone();
        cfg.service_ports = ports.map(|p| p.into_iter().collect());
        l.reconfigure(cfg);
        true
    }

    /// Sets the node's global event gate (the big switch above all
    /// analyzers).
    pub fn set_global_mask(&self, world: &mut World, node: NodeId, mask: EventMask) {
        world.kprof_mut(node).set_global_mask(mask);
    }

    /// The current LPA configuration, if the analyzer is an LPA.
    pub fn lpa_config(&self, world: &World, node: NodeId, lpa: AnalyzerId) -> Option<LpaConfig> {
        world
            .kprof(node)
            .analyzer_as::<Lpa>(lpa)
            .map(|l| l.config().clone())
    }
}
