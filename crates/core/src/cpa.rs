//! Custom Performance Analyzers (CPAs): runtime-installable E-Code
//! analyzers.
//!
//! "In addition to the statically defined LPAs, custom analyzers can be
//! dynamically created and downloaded into the kernel. CPAs function just
//! like normal LPAs, including registering of callbacks with Kprof …
//! CPAs are specified in the form of E-Code (a language subset of C),
//! compiled through run-time code generation." (§2)
//!
//! Every event delivered to a CPA runs its program once over the event's
//! fields; the VM's fuel consumption converts to CPU time charged as
//! monitoring overhead. Programs accumulate state in `static` variables,
//! flag events by returning nonzero, and publish computed metrics with
//! `out(slot, value)`.

use ecode::{ExecTier, Instance, Type, Value, VerifyError, VerifyLimits, VerifyReport};
use kprof::{Analyzer, AnalyzerOutcome, Event, EventMask, EventPayload, Interest, Predicate};
use simcore::SimDuration;

/// The per-event inputs every CPA program sees, in order:
///
/// | name       | meaning                                              |
/// |------------|------------------------------------------------------|
/// | `kind`     | [`kprof::EventKind`] discriminant (0–19)             |
/// | `pid`      | process id, 0 when unknown                           |
/// | `wall_us`  | node wall-clock timestamp, µs                        |
/// | `size`     | packet wire bytes (network events), else 0           |
/// | `aux`      | syscall kernel time µs / file or block I/O bytes     |
/// | `port_src` | network flow source port, else 0                     |
/// | `port_dst` | network flow destination port, else 0                |
pub const EVENT_INPUTS: [(&str, Type); 7] = [
    ("kind", Type::Int),
    ("pid", Type::Int),
    ("wall_us", Type::Int),
    ("size", Type::Int),
    ("aux", Type::Int),
    ("port_src", Type::Int),
    ("port_dst", Type::Int),
];

/// Error installing a CPA: the program failed static verification. Carries
/// the full diagnostic list — nothing touches Kprof when this is returned.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaError(pub VerifyError);

impl std::fmt::Display for CpaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpa rejected by verifier:\n{}", self.0)
    }
}

impl std::error::Error for CpaError {}

/// A custom analyzer: an E-Code program behind the [`Analyzer`] interface.
pub struct CpaAnalyzer {
    name: String,
    instance: Instance,
    mask: EventMask,
    predicate: Predicate,
    fuel_budget: u64,
    ns_per_instr: f64,
    report: VerifyReport,
    /// Events whose program run returned nonzero.
    flagged: u64,
    events: u64,
    aborted: u64,
    /// Latest value written to each output slot.
    outputs: std::collections::BTreeMap<i64, f64>,
}

impl CpaAnalyzer {
    /// Verifies `source` against [`EVENT_INPUTS`] and the default fuel
    /// budget, then wraps the optimized program as an analyzer subscribed
    /// to `mask`. Rejection happens *before* anything is registered with
    /// Kprof — a bad program never sees a single event.
    ///
    /// # Errors
    ///
    /// [`CpaError`] with line-numbered diagnostics if the source fails
    /// static verification (compile error, guaranteed trap, out-of-range
    /// output slot, or worst-case fuel above the budget).
    pub fn compile(name: &str, source: &str, mask: EventMask) -> Result<CpaAnalyzer, CpaError> {
        let fuel_budget = 2_000;
        let limits = VerifyLimits::with_max_fuel(fuel_budget);
        let verified = ecode::verify(source, &EVENT_INPUTS, &limits).map_err(CpaError)?;
        let (program, report) = verified.into_parts();
        Ok(CpaAnalyzer {
            name: name.to_owned(),
            instance: Instance::new(&program),
            mask,
            predicate: Predicate::new(),
            fuel_budget,
            ns_per_instr: 2.0,
            report,
            flagged: 0,
            events: 0,
            aborted: 0,
            outputs: Default::default(),
        })
    }

    /// Adds a Kprof pruning predicate.
    #[must_use]
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Overrides the per-event fuel budget (default 2000 instructions).
    #[must_use]
    pub fn with_fuel_budget(mut self, fuel: u64) -> Self {
        self.fuel_budget = fuel;
        self
    }

    /// The verifier's report: proven worst-case fuel bound (before and
    /// after optimization) and any warnings.
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// The proven worst-case fuel per event. Hosts can pre-size cost
    /// accounting with this instead of assuming the full budget.
    pub fn fuel_bound(&self) -> u64 {
        self.report.fuel_bound
    }

    /// Events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events the program flagged (returned nonzero for).
    pub fn flagged(&self) -> u64 {
        self.flagged
    }

    /// Runs aborted for exceeding the fuel budget.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Latest value published to an output slot.
    pub fn output(&self, slot: i64) -> Option<f64> {
        self.outputs.get(&slot).copied()
    }

    /// A static variable's current value.
    pub fn global(&self, name: &str) -> Option<Value> {
        self.instance.global(name)
    }

    /// Which execution tier the program was installed on: `Compiled` when
    /// it passed the [`ecode::CompileBudget`] heuristic and was lowered to
    /// closures, `Fused` when it fell back to the fused VM. Either way the
    /// observable behavior (globals, outputs, flags, fuel) is identical.
    pub fn tier(&self) -> ExecTier {
        self.instance.tier()
    }

    fn inputs_for(event: &Event) -> [i64; 7] {
        let kind = event.kind() as u8 as i64;
        let pid = event.payload.pid().map(|p| p.0 as i64).unwrap_or(0);
        let wall = event.wall.as_micros() as i64;
        let (size, ports) = match &event.payload {
            EventPayload::Net { size, flow, .. } => (
                *size as i64,
                (flow.src.port.0 as i64, flow.dst.port.0 as i64),
            ),
            _ => (0, (0, 0)),
        };
        let aux = match &event.payload {
            EventPayload::SyscallExit { kernel_time, .. } => kernel_time.as_micros() as i64,
            EventPayload::FileRead { bytes, .. }
            | EventPayload::FileWrite { bytes, .. }
            | EventPayload::BlockIoStart { bytes, .. }
            | EventPayload::BlockIoComplete { bytes, .. } => *bytes as i64,
            _ => 0,
        };
        // Every entry in EVENT_INPUTS is Type::Int, so the raw input bits
        // are the values themselves — no Value boxing on the hot path.
        [kind, pid, wall, size, aux, ports.0, ports.1]
    }
}

impl Analyzer for CpaAnalyzer {
    fn name(&self) -> &str {
        &self.name
    }

    fn interest(&self) -> Interest {
        Interest {
            mask: self.mask,
            predicate: self.predicate.clone(),
        }
    }

    fn on_event(&mut self, event: &Event) -> AnalyzerOutcome {
        self.events += 1;
        let inputs = Self::inputs_for(event);
        // The outcome borrows the instance's output arena; fold it into
        // the persistent per-slot map before the next run overwrites it.
        let fuel_used = match self.instance.run_raw(&inputs, self.fuel_budget) {
            Ok(out) => {
                if out.ret != 0 {
                    self.flagged += 1;
                }
                for &(slot, value) in out.outputs {
                    self.outputs.insert(slot, value);
                }
                out.fuel_used
            }
            Err(_) => {
                self.aborted += 1;
                self.fuel_budget
            }
        };
        AnalyzerOutcome {
            cost: SimDuration::from_nanos((fuel_used as f64 * self.ns_per_instr) as u64),
            buffer_full: false,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kprof::{EventKind, Pid};
    use simcore::{NodeId, SimTime};
    use simnet::{EndPoint, FlowKey, Ip, PacketId, Port};

    fn net_event(size: u32, dst_port: u16) -> Event {
        Event {
            seq: 0,
            node: NodeId(0),
            cpu: 0,
            wall: SimTime::from_micros(77),
            payload: EventPayload::Net {
                point: kprof::NetPoint::RxNic,
                flow: FlowKey::new(
                    EndPoint::new(Ip(1), Port(555)),
                    EndPoint::new(Ip(2), Port(dst_port)),
                ),
                packet: PacketId(1),
                size,
                pid: Some(Pid(4)),
                arm: None,
            },
        }
    }

    #[test]
    fn counts_large_packets_to_port() {
        let src = r#"
            static int big = 0;
            if (kind == 7 && size > 1000 && port_dst == 2049) {
                big = big + 1;
            }
            return big;
        "#;
        let mut cpa = CpaAnalyzer::compile("big-counter", src, EventMask::NETWORK).unwrap();
        assert_eq!(
            cpa.tier(),
            ExecTier::Compiled,
            "the canonical counting CPA must land on the compiled tier"
        );
        cpa.on_event(&net_event(1500, 2049));
        cpa.on_event(&net_event(200, 2049)); // too small
        cpa.on_event(&net_event(1500, 80)); // wrong port
        let out = cpa.on_event(&net_event(1400, 2049));
        assert!(out.cost > SimDuration::ZERO);
        assert_eq!(cpa.global("big"), Some(Value::Int(2)));
        assert_eq!(cpa.events(), 4);
        assert_eq!(
            EventKind::NetRxNic as u8,
            7,
            "the documented kind table must stay stable"
        );
    }

    #[test]
    fn outputs_publish_metrics() {
        let src = r#"
            static int n = 0;
            static double total = 0.0;
            n = n + 1;
            total = total + size;
            out(0, total / n);
            return 0;
        "#;
        let mut cpa = CpaAnalyzer::compile("avg-size", src, EventMask::NETWORK).unwrap();
        cpa.on_event(&net_event(100, 1));
        cpa.on_event(&net_event(300, 1));
        assert_eq!(cpa.output(0), Some(200.0));
        assert_eq!(cpa.output(1), None);
    }

    #[test]
    fn flagging_counts_nonzero_returns() {
        let mut cpa =
            CpaAnalyzer::compile("flag", "return size > 500;", EventMask::NETWORK).unwrap();
        cpa.on_event(&net_event(600, 1));
        cpa.on_event(&net_event(100, 1));
        assert_eq!(cpa.flagged(), 1);
    }

    #[test]
    fn bad_source_reports_error() {
        assert!(CpaAnalyzer::compile("broken", "return nonsense;", EventMask::ALL).is_err());
        assert!(CpaAnalyzer::compile("broken", "int x = ;", EventMask::ALL).is_err());
    }

    #[test]
    fn fuel_exhaustion_is_counted_not_fatal() {
        // A program that costs more than 3 instructions.
        let mut cpa = CpaAnalyzer::compile(
            "hungry",
            "int a = 1; int b = 2; int c = a + b; return c;",
            EventMask::NETWORK,
        )
        .unwrap()
        .with_fuel_budget(3);
        let out = cpa.on_event(&net_event(1, 1));
        assert_eq!(cpa.aborted(), 1);
        // The wasted fuel is still charged.
        assert_eq!(out.cost, SimDuration::from_nanos(6));
    }

    #[test]
    fn cost_scales_with_fuel() {
        let mut cheap = CpaAnalyzer::compile("cheap", "return 0;", EventMask::NETWORK).unwrap();
        let mut pricey = CpaAnalyzer::compile(
            "pricey",
            "int s = 0; s = s + size; s = s * 2; s = s % 97; return s;",
            EventMask::NETWORK,
        )
        .unwrap();
        let c1 = cheap.on_event(&net_event(1, 1)).cost;
        let c2 = pricey.on_event(&net_event(1, 1)).cost;
        assert!(c2 > c1, "{c2} vs {c1}");
    }
}
