//! SysProf: online distributed behavior diagnosis through fine-grain
//! system monitoring.
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrate crates:
//!
//! * [`Lpa`] — the **Local Performance Analyzer**: registered with each
//!   node's Kprof, it extracts *messages* (runs of same-direction packets)
//!   and *interactions* (request/response message pairs) from raw network
//!   events, attributes per-interaction kernel time, user time, and
//!   blocked time from scheduling events, and stages finished
//!   [`InteractionRecord`]s in per-CPU double buffers,
//! * [`CpaAnalyzer`] — **Custom Performance Analyzers**: E-Code programs
//!   installed at runtime, fuel-metered, run against every matching event,
//! * [`Daemon`] — the **dissemination daemon**: woken on buffer-full
//!   notifications, it drains LPA buffers, applies dynamic filters,
//!   PBIO-encodes records and publishes them over kernel-level
//!   pub/sub channels (consuming real simulated bandwidth and CPU),
//! * [`Gpa`] — the **Global Performance Analyzer**: subscribes to the
//!   daemons' channels, correlates interaction records across nodes by
//!   endpoints and (imperfect, NTP-disciplined) wall-clock timestamps into
//!   end-to-end request paths, and answers queries,
//! * [`Controller`] — the knob panel: monitoring level (off / per-class /
//!   per-interaction / full), buffer and window sizes, event masks,
//! * [`procfs`] — `/proc`-style textual views of the collected data,
//! * [`SysProf`] — the facade that deploys all of the above onto a
//!   [`simos::World`] in one call.
//!
//! # Example
//!
//! ```
//! use simcore::{NodeId, SimTime};
//! use simnet::LinkSpec;
//! use simos::{WorldBuilder, programs::{EchoServer, OneShotSender}};
//! use sysprof::{MonitorConfig, SysProf};
//!
//! let mut world = WorldBuilder::new(1)
//!     .node("client")
//!     .node("server")
//!     .node("monitor")
//!     .full_mesh(LinkSpec::gigabit_lan())
//!     .build()?;
//! world.spawn(NodeId(1), "echo", Box::new(EchoServer::new(
//!     simnet::Port(80), 512, simcore::SimDuration::from_micros(100))));
//! world.spawn(NodeId(0), "client", Box::new(OneShotSender::new(
//!     NodeId(1), simnet::Port(80), 2_000)));
//!
//! let sysprof = SysProf::deploy(&mut world, &[NodeId(1)], NodeId(2),
//!                               MonitorConfig::default());
//! world.run_until(SimTime::from_secs(2));
//!
//! let gpa = sysprof.gpa();
//! assert!(gpa.borrow().interaction_count() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod cpa;
mod daemon;
mod deploy;
mod gpa;
mod lpa;
pub mod procfs;
mod query;
mod records;

pub use controller::{Controller, MonitorLevel};
pub use cpa::{CpaAnalyzer, CpaError, EVENT_INPUTS};
pub use daemon::{
    split_frames, ControlSink, Daemon, DaemonConfig, DaemonStats, ReliableTx, CONTROL_PORT,
    DAEMON_SRC_PORT, DATA_PORT, LOAD_TOPIC,
};
pub use deploy::{MonitorConfig, SysProf};
pub use gpa::{
    flow_shard_key, ClassSummary, ControlReplySink, CorrelatedPath, Gpa, GpaConfig, GpaSink,
    GpaStats, NodeLoadView, SubscriptionFailure,
};
pub use lpa::{Lpa, LpaConfig};
pub use query::{GpaAnswer, GpaQuery, GpaQuerySink, QueryClient, QUERY_PORT, QUERY_REPLY_PORT};
pub use records::{InteractionRecord, LoadRecord, INTERACTION_TOPIC};
