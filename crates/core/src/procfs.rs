//! `/proc`-style textual views of monitoring state.
//!
//! The dissemination daemon "makes [the data] available to the user-level
//! through the standard `/proc` virtual filesystem interface" (§2, as
//! with Dproc). These renderers produce the file contents an
//! administrator would `cat`.

use kprof::Kprof;
use simcore::NodeId;

use crate::gpa::Gpa;
use crate::lpa::Lpa;

/// Renders `/proc/sysprof/interactions`: the LPA's recent-interaction
/// window, one line per interaction.
pub fn render_interactions(lpa: &Lpa) -> String {
    let mut out = String::from(
        "# flow                                  class  pid    start_us     total_us  kern_in  user  kern_out  blocked\n",
    );
    for r in lpa.window_snapshot() {
        out.push_str(&format!(
            "{:<40} {:<6} {:<6} {:<12} {:<9} {:<8} {:<5} {:<9} {}\n",
            r.flow.to_string(),
            r.class_port,
            r.pid,
            r.start_us,
            r.end_us.saturating_sub(r.start_us),
            r.kernel_in_us,
            r.user_us,
            r.kernel_out_us,
            r.blocked_us,
        ));
    }
    out
}

/// Renders `/proc/sysprof/classes`: per-service-class aggregates.
pub fn render_classes(lpa: &Lpa) -> String {
    let mut out =
        String::from("# class_port  count   mean_kernel_in_us  mean_user_us  mean_total_us\n");
    for (port, count, kin, user, total) in lpa.class_summaries() {
        out.push_str(&format!(
            "{:<12} {:<7} {:<18.1} {:<13.1} {:.1}\n",
            port, count, kin, user, total
        ));
    }
    out
}

/// Renders `/proc/sysprof/status`: monitoring-layer health for one node.
pub fn render_status(node: NodeId, kprof: &Kprof, lpa: &Lpa) -> String {
    let s = kprof.stats();
    format!(
        "node: {node}\n\
         effective_mask_kinds: {}\n\
         events_generated: {}\n\
         events_delivered: {}\n\
         events_suppressed: {}\n\
         predicate_rejections: {}\n\
         monitoring_overhead: {}\n\
         lpa_events: {}\n\
         lpa_records: {}\n\
         lpa_overwritten: {}\n",
        kprof.effective_mask().len(),
        s.events_generated,
        s.events_delivered,
        s.events_suppressed,
        s.predicate_rejections,
        s.total_overhead,
        lpa.events_seen(),
        lpa.records_completed(),
        lpa.overwritten(),
    )
}

/// Renders the GPA's cluster-wide summary table.
pub fn render_gpa_summary(gpa: &Gpa) -> String {
    let mut out = String::from(
        "# node   class   count   kern_in_us  user_us  kern_out_us  blocked_us  total_us  p50_us   p95_us   p99_us\n",
    );
    for s in gpa.all_class_summaries() {
        out.push_str(&format!(
            "{:<8} {:<7} {:<7} {:<11.1} {:<8.1} {:<12.1} {:<11.1} {:<9.1} {:<8.0} {:<8.0} {:.0}\n",
            s.node.to_string(),
            s.class_port,
            s.count,
            s.mean_kernel_in_us,
            s.mean_user_us,
            s.mean_kernel_out_us,
            s.mean_blocked_us,
            s.mean_total_us,
            s.p50_total_us,
            s.p95_total_us,
            s.p99_total_us,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpa::LpaConfig;
    use simnet::Ip;

    #[test]
    fn renders_are_nonempty_and_have_headers() {
        let lpa = Lpa::new(NodeId(0), Ip::for_node_index(0), LpaConfig::default());
        let kprof = Kprof::new(NodeId(0));
        let gpa = Gpa::new(crate::GpaConfig::default());
        assert!(render_interactions(&lpa).starts_with("# flow"));
        assert!(render_classes(&lpa).starts_with("# class_port"));
        assert!(render_status(NodeId(0), &kprof, &lpa).contains("events_generated: 0"));
        assert!(render_gpa_summary(&gpa).starts_with("# node"));
    }
}
