//! One-call deployment of the whole SysProf stack onto a simulated
//! cluster.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use kprof::AnalyzerId;
use pubsub::control::ControlMsg;
use pubsub::Hub;
use simcore::NodeId;
use simnet::EndPoint;
use simos::World;

use crate::daemon::{
    ControlSink, Daemon, DaemonConfig, DaemonStats, CONTROL_PORT, DAEMON_SRC_PORT, DATA_PORT,
};
use crate::gpa::{ControlReplySink, Gpa, GpaConfig, GpaSink};
use crate::lpa::{Lpa, LpaConfig};
use crate::records::INTERACTION_TOPIC;

/// Configuration for a full SysProf deployment.
#[derive(Debug, Clone, Default)]
pub struct MonitorConfig {
    /// LPA configuration applied to every monitored node.
    pub lpa: LpaConfig,
    /// Daemon configuration applied to every monitored node.
    pub daemon: DaemonConfig,
    /// GPA configuration.
    pub gpa: GpaConfig,
    /// Optional E-Code filter for the GPA's interaction subscription
    /// (e.g. `"return kernel_in_us > 1000;"` to only ship slow ones).
    pub interaction_filter: Option<String>,
}

/// Handles to a deployed SysProf instance.
pub struct SysProf {
    monitored: Vec<NodeId>,
    gpa_node: NodeId,
    lpa_ids: HashMap<NodeId, AnalyzerId>,
    daemon_stats: HashMap<NodeId, Rc<RefCell<DaemonStats>>>,
    gpa: Rc<RefCell<Gpa>>,
}

impl SysProf {
    /// Deploys SysProf: registers an LPA and dissemination daemon on each
    /// node in `monitored`, installs the GPA on `gpa_node`, and issues the
    /// subscription control messages (over the simulated wire) that
    /// connect daemons to the GPA.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range for the world.
    pub fn deploy(
        world: &mut World,
        monitored: &[NodeId],
        gpa_node: NodeId,
        config: MonitorConfig,
    ) -> SysProf {
        let gpa = Rc::new(RefCell::new(Gpa::new(config.gpa)));
        let gpa_ep = EndPoint::new(world.network().node_ip(gpa_node), DATA_PORT);
        world.install_sink(
            gpa_node,
            DATA_PORT,
            Box::new(GpaSink::new(gpa.clone(), gpa_ep)),
        );
        world.install_sink(
            gpa_node,
            crate::query::QUERY_PORT,
            Box::new(crate::query::GpaQuerySink::new(gpa.clone())),
        );
        // Subscribe NACKs from daemons route back to the port our
        // control requests are sent from.
        world.install_sink(
            gpa_node,
            DAEMON_SRC_PORT,
            Box::new(ControlReplySink::new(gpa.clone())),
        );

        let mut lpa_ids = HashMap::new();
        let mut daemon_stats = HashMap::new();
        for &node in monitored {
            let ip = world.network().node_ip(node);
            let lpa = Lpa::new(node, ip, config.lpa.clone());
            let lpa_id = world.kprof_mut(node).register(Box::new(lpa));
            lpa_ids.insert(node, lpa_id);

            let hub = Rc::new(RefCell::new(Hub::new()));
            let daemon = Daemon::new(lpa_id, hub.clone(), config.daemon);
            let stats = daemon.stats_handle();
            let tx = daemon.resend_handle();
            daemon_stats.insert(node, stats.clone());
            world.set_daemon_hook(node, Box::new(daemon));
            world.install_sink(
                node,
                CONTROL_PORT,
                Box::new(ControlSink::new(hub, stats, tx)),
            );
            // Kick off the periodic flush cycle.
            world.schedule_daemon_wake(node, config.daemon.flush_interval);
        }

        // Subscribe the GPA to every daemon's channels, over the wire.
        for &node in monitored {
            let ctl_ep = EndPoint::new(world.network().node_ip(node), CONTROL_PORT);
            let sub_interactions = ControlMsg::Subscribe {
                topic: INTERACTION_TOPIC.to_owned(),
                reply_to: gpa_ep,
                filter: config.interaction_filter.clone(),
            };
            let sub_load = ControlMsg::Subscribe {
                topic: crate::daemon::LOAD_TOPIC.to_owned(),
                reply_to: gpa_ep,
                filter: None,
            };
            world.kernel_send(
                gpa_node,
                DAEMON_SRC_PORT,
                ctl_ep,
                0,
                sub_interactions.encode(),
            );
            world.kernel_send(gpa_node, DAEMON_SRC_PORT, ctl_ep, 0, sub_load.encode());
        }

        SysProf {
            monitored: monitored.to_vec(),
            gpa_node,
            lpa_ids,
            daemon_stats,
            gpa,
        }
    }

    /// The shared GPA handle (query with `.borrow()`).
    pub fn gpa(&self) -> Rc<RefCell<Gpa>> {
        self.gpa.clone()
    }

    /// The node hosting the GPA.
    pub fn gpa_node(&self) -> NodeId {
        self.gpa_node
    }

    /// The monitored nodes.
    pub fn monitored(&self) -> &[NodeId] {
        &self.monitored
    }

    /// The LPA analyzer id on a node.
    pub fn lpa_id(&self, node: NodeId) -> Option<AnalyzerId> {
        self.lpa_ids.get(&node).copied()
    }

    /// Borrows a node's LPA for inspection.
    pub fn lpa<'w>(&self, world: &'w World, node: NodeId) -> Option<&'w Lpa> {
        let id = self.lpa_id(node)?;
        world.kprof(node).analyzer_as::<Lpa>(id)
    }

    /// A node's daemon counters.
    pub fn daemon_stats(&self, node: NodeId) -> Option<DaemonStats> {
        self.daemon_stats.get(&node).map(|s| *s.borrow())
    }

    /// The monitoring CPU overhead on a node as a fraction of elapsed
    /// time (the paper's perturbation metric).
    pub fn overhead_fraction(&self, world: &World, node: NodeId) -> f64 {
        let stats = world.node_stats(node);
        let elapsed = world.now().as_secs_f64();
        if elapsed == 0.0 {
            0.0
        } else {
            stats.cpu.monitor.as_secs_f64() / elapsed
        }
    }

    /// Compiles and installs a Custom Performance Analyzer (E-Code) on a
    /// node at runtime — §2's "custom analyzers can be dynamically
    /// created and downloaded into the kernel". Returns the analyzer id
    /// for later inspection or removal.
    ///
    /// # Errors
    ///
    /// [`CpaError`](crate::CpaError) if the source does not compile.
    pub fn install_cpa(
        &self,
        world: &mut World,
        node: NodeId,
        name: &str,
        source: &str,
        mask: kprof::EventMask,
    ) -> Result<AnalyzerId, crate::CpaError> {
        let cpa = crate::CpaAnalyzer::compile(name, source, mask)?;
        Ok(world.kprof_mut(node).register(Box::new(cpa)))
    }

    /// Writes the GPA's state summary to disk as JSON — the paper's
    /// "periodically dumps its information onto local disk … for purposes
    /// of auditing, workload prediction, and system modeling".
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn dump_gpa_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.gpa.borrow().dump_json())
    }

    /// Subscribes an additional consumer endpoint to a topic on a
    /// monitored node (e.g. an RA-DWCS dispatcher subscribing to load
    /// reports), over the simulated wire.
    pub fn subscribe(
        &self,
        world: &mut World,
        from_node: NodeId,
        monitored_node: NodeId,
        topic: &str,
        reply_to: EndPoint,
        filter: Option<&str>,
    ) {
        let ctl_ep = EndPoint::new(world.network().node_ip(monitored_node), CONTROL_PORT);
        let msg = ControlMsg::Subscribe {
            topic: topic.to_owned(),
            reply_to,
            filter: filter.map(str::to_owned),
        };
        world.kernel_send(from_node, DAEMON_SRC_PORT, ctl_ep, 0, msg.encode());
    }
}
