//! The monitoring records SysProf produces, and their PBIO schemas.

use pbio::{FieldType, Schema, Value};
use serde::{Deserialize, Serialize};
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{EndPoint, FlowKey, Ip, Port};

/// Topic name the dissemination daemons publish interaction records on.
pub const INTERACTION_TOPIC: &str = "sysprof.interactions";

/// One diagnosed request/response interaction, as measured by the LPA on
/// one node (§2 "Messages and Interactions").
///
/// All timestamps are the **measuring node's wall clock** in microseconds
/// — the GPA must absorb NTP error when correlating across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InteractionRecord {
    /// Node that measured this interaction.
    pub node: NodeId,
    /// The request flow (initiator → responder), as observed.
    pub flow: FlowKey,
    /// Service class: the responder-side port.
    pub class_port: Port,
    /// Process that served the interaction, if known (0 = unknown/kernel).
    pub pid: u32,
    /// Wall time the first request packet hit the NIC, µs.
    pub start_us: u64,
    /// Wall time the last response packet left the NIC, µs.
    pub end_us: u64,
    /// Request packets/bytes (wire bytes).
    pub req_packets: u32,
    /// Request wire bytes.
    pub req_bytes: u64,
    /// Response packets.
    pub resp_packets: u32,
    /// Response wire bytes.
    pub resp_bytes: u64,
    /// Inbound kernel time: first NIC arrival → last byte copied to user
    /// space (protocol processing **plus socket-buffer queueing** — the
    /// quantity that grows under load in Figure 4).
    pub kernel_in_us: u64,
    /// Time the serving process actually ran between request delivery and
    /// response submission ("user level" time; constant for the proxy in
    /// Figure 4).
    pub user_us: u64,
    /// Outbound kernel time: send syscall → last bit on the wire.
    pub kernel_out_us: u64,
    /// Time the serving process was blocked during the interaction window.
    pub blocked_us: u64,
    /// Of which: blocked on disk I/O.
    pub blocked_io_us: u64,
}

impl InteractionRecord {
    /// Total wall-clock latency at this node.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_micros(self.end_us.saturating_sub(self.start_us))
    }

    /// Total kernel-level time (in + out).
    pub fn kernel_total(&self) -> SimDuration {
        SimDuration::from_micros(self.kernel_in_us + self.kernel_out_us)
    }

    /// The PBIO schema for interaction records.
    pub fn schema() -> Schema {
        Schema::build("sysprof.interaction")
            .field("node", FieldType::U64)
            .field("src_ip", FieldType::U64)
            .field("src_port", FieldType::U64)
            .field("dst_ip", FieldType::U64)
            .field("dst_port", FieldType::U64)
            .field("class_port", FieldType::U64)
            .field("pid", FieldType::U64)
            .field("start_us", FieldType::U64)
            .field("end_us", FieldType::U64)
            .field("req_packets", FieldType::U64)
            .field("req_bytes", FieldType::U64)
            .field("resp_packets", FieldType::U64)
            .field("resp_bytes", FieldType::U64)
            .field("kernel_in_us", FieldType::U64)
            .field("user_us", FieldType::U64)
            .field("kernel_out_us", FieldType::U64)
            .field("blocked_us", FieldType::U64)
            .field("blocked_io_us", FieldType::U64)
            .finish()
            .expect("static schema is valid")
    }

    /// Encodes as PBIO values (schema field order).
    pub fn to_values(&self) -> Vec<Value> {
        vec![
            Value::U64(self.node.0 as u64),
            Value::U64(self.flow.src.ip.0 as u64),
            Value::U64(self.flow.src.port.0 as u64),
            Value::U64(self.flow.dst.ip.0 as u64),
            Value::U64(self.flow.dst.port.0 as u64),
            Value::U64(self.class_port.0 as u64),
            Value::U64(self.pid as u64),
            Value::U64(self.start_us),
            Value::U64(self.end_us),
            Value::U64(self.req_packets as u64),
            Value::U64(self.req_bytes),
            Value::U64(self.resp_packets as u64),
            Value::U64(self.resp_bytes),
            Value::U64(self.kernel_in_us),
            Value::U64(self.user_us),
            Value::U64(self.kernel_out_us),
            Value::U64(self.blocked_us),
            Value::U64(self.blocked_io_us),
        ]
    }

    /// Encodes as a raw digest row: one `i64` per schema field, in
    /// schema order, holding the same bits [`to_values`](Self::to_values)
    /// would produce (all interaction fields are unsigned integers, so
    /// the raw value is just the width-extended count). This is the
    /// allocation-free hot-path form `ShardedDigest::ingest_raw`
    /// consumes; `out` is a reusable scratch buffer.
    pub fn to_raw_row(&self, out: &mut Vec<i64>) {
        out.clear();
        out.extend_from_slice(&[
            self.node.0 as i64,
            self.flow.src.ip.0 as i64,
            self.flow.src.port.0 as i64,
            self.flow.dst.ip.0 as i64,
            self.flow.dst.port.0 as i64,
            self.class_port.0 as i64,
            self.pid as i64,
            self.start_us as i64,
            self.end_us as i64,
            self.req_packets as i64,
            self.req_bytes as i64,
            self.resp_packets as i64,
            self.resp_bytes as i64,
            self.kernel_in_us as i64,
            self.user_us as i64,
            self.kernel_out_us as i64,
            self.blocked_us as i64,
            self.blocked_io_us as i64,
        ]);
    }

    /// Decodes from PBIO values.
    ///
    /// Returns `None` if the values do not match the schema shape.
    pub fn from_values(values: &[Value]) -> Option<InteractionRecord> {
        if values.len() != 18 {
            return None;
        }
        let u = |i: usize| values[i].as_u64();
        Some(InteractionRecord {
            node: NodeId(u(0)? as u32),
            flow: FlowKey::new(
                EndPoint::new(Ip(u(1)? as u32), Port(u(2)? as u16)),
                EndPoint::new(Ip(u(3)? as u32), Port(u(4)? as u16)),
            ),
            class_port: Port(u(5)? as u16),
            pid: u(6)? as u32,
            start_us: u(7)?,
            end_us: u(8)?,
            req_packets: u(9)? as u32,
            req_bytes: u(10)?,
            resp_packets: u(11)? as u32,
            resp_bytes: u(12)?,
            kernel_in_us: u(13)?,
            user_us: u(14)?,
            kernel_out_us: u(15)?,
            blocked_us: u(16)?,
            blocked_io_us: u(17)?,
        })
    }
}

/// A per-node load report published by the dissemination daemon — the
/// signal RA-DWCS uses for dispatch decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadRecord {
    /// Reporting node.
    pub node: NodeId,
    /// Wall time of the report, µs.
    pub wall_us: u64,
    /// CPU busy fraction over the report window.
    pub cpu_utilization: f64,
    /// Mean per-interaction kernel time over the window, µs.
    pub mean_kernel_us: f64,
    /// Interactions completed in the window.
    pub interactions: u64,
    /// Monitoring overhead CPU time in the window, µs.
    pub monitor_us: u64,
}

impl LoadRecord {
    /// The PBIO schema for load records.
    pub fn schema() -> Schema {
        Schema::build("sysprof.load")
            .field("node", FieldType::U64)
            .field("wall_us", FieldType::U64)
            .field("cpu_utilization", FieldType::F64)
            .field("mean_kernel_us", FieldType::F64)
            .field("interactions", FieldType::U64)
            .field("monitor_us", FieldType::U64)
            .finish()
            .expect("static schema is valid")
    }

    /// Encodes as PBIO values.
    pub fn to_values(&self) -> Vec<Value> {
        vec![
            Value::U64(self.node.0 as u64),
            Value::U64(self.wall_us),
            Value::F64(self.cpu_utilization),
            Value::F64(self.mean_kernel_us),
            Value::U64(self.interactions),
            Value::U64(self.monitor_us),
        ]
    }

    /// Decodes from PBIO values.
    pub fn from_values(values: &[Value]) -> Option<LoadRecord> {
        if values.len() != 6 {
            return None;
        }
        Some(LoadRecord {
            node: NodeId(values[0].as_u64()? as u32),
            wall_us: values[1].as_u64()?,
            cpu_utilization: values[2].as_f64()?,
            mean_kernel_us: values[3].as_f64()?,
            interactions: values[4].as_u64()?,
            monitor_us: values[5].as_u64()?,
        })
    }

    /// The wall time as a [`SimTime`].
    pub fn wall(&self) -> SimTime {
        SimTime::from_micros(self.wall_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InteractionRecord {
        InteractionRecord {
            node: NodeId(3),
            flow: FlowKey::new(
                EndPoint::new(Ip(0x0A000001), Port(40001)),
                EndPoint::new(Ip(0x0A000002), Port(2049)),
            ),
            class_port: Port(2049),
            pid: 17,
            start_us: 1_000_000,
            end_us: 1_002_500,
            req_packets: 6,
            req_bytes: 8_400,
            resp_packets: 1,
            resp_bytes: 190,
            kernel_in_us: 700,
            user_us: 120,
            kernel_out_us: 80,
            blocked_us: 1_500,
            blocked_io_us: 1_400,
        }
    }

    #[test]
    fn interaction_pbio_round_trip() {
        let rec = sample();
        let values = rec.to_values();
        assert_eq!(values.len(), InteractionRecord::schema().len());
        let back = InteractionRecord::from_values(&values).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn interaction_derived_metrics() {
        let rec = sample();
        assert_eq!(rec.total(), SimDuration::from_micros(2_500));
        assert_eq!(rec.kernel_total(), SimDuration::from_micros(780));
    }

    #[test]
    fn from_values_rejects_wrong_shape() {
        assert!(InteractionRecord::from_values(&[]).is_none());
        let mut vals = sample().to_values();
        vals[0] = Value::Str("oops".into());
        assert!(InteractionRecord::from_values(&vals).is_none());
    }

    #[test]
    fn binary_encoding_beats_text_by_an_order_of_magnitude() {
        // The paper's argument against XML-based formats (Common Base
        // Event / HP OpenView): per-record costs must be near raw-struct
        // size. Compare the PBIO wire size against the JSON rendering of
        // the same record.
        let rec = sample();
        let schema = InteractionRecord::schema();
        let mut w = pbio::RecordWriter::new(&schema);
        for v in rec.to_values() {
            w.push_value(&v).unwrap();
        }
        let binary = w.finish().unwrap();
        let json = serde_json::to_vec(&rec).unwrap();
        assert!(
            binary.len() * 5 < json.len(),
            "binary {}B vs text {}B",
            binary.len(),
            json.len()
        );
        assert!(
            binary.len() < 64,
            "a record fits in a cache line: {}B",
            binary.len()
        );
    }

    #[test]
    fn load_pbio_round_trip() {
        let rec = LoadRecord {
            node: NodeId(2),
            wall_us: 5_000_000,
            cpu_utilization: 0.83,
            mean_kernel_us: 412.5,
            interactions: 230,
            monitor_us: 1_200,
        };
        let back = LoadRecord::from_values(&rec.to_values()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.wall(), SimTime::from_secs(5));
    }

    #[test]
    fn schemas_are_filterable() {
        // Every numeric field must be visible to E-Code filters: no Str
        // fields in the hot-path schemas.
        for schema in [InteractionRecord::schema(), LoadRecord::schema()] {
            for f in schema.fields() {
                assert!(
                    matches!(f.ty, FieldType::U64 | FieldType::F64),
                    "{} has non-numeric field {}",
                    schema.name(),
                    f.name
                );
            }
        }
    }
}
