//! Remote GPA queries.
//!
//! "Other nodes in the system can query the GPA to determine information
//! about a particular interaction or about the system as a whole." (§2)
//!
//! Queries travel as kernel messages to the GPA node's query port; the
//! GPA answers over the same kernel channels to a reply endpoint the
//! querier names. Both sides are modeled with [`simos::KernelSink`]s, so
//! queries and answers consume real simulated bandwidth and CPU.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{EndPoint, Port};
use simos::{KernelOutput, KernelSend, KernelSink, Message, World};

use crate::gpa::Gpa;
use crate::{ClassSummary, NodeLoadView};

/// Port on the GPA node that answers queries.
pub const QUERY_PORT: Port = Port(9995);
/// Default port queriers listen on for answers.
pub const QUERY_REPLY_PORT: Port = Port(9994);

/// A question for the GPA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GpaQuery {
    /// How many interactions has the GPA ingested?
    InteractionCount,
    /// The aggregate summary for one (node, class-port) pair.
    ClassSummary {
        /// Measuring node.
        node: NodeId,
        /// Responder-side port.
        class_port: u16,
    },
    /// The latest load view of a node.
    NodeLoad {
        /// The node in question.
        node: NodeId,
    },
    /// Every class summary the GPA holds.
    AllClassSummaries,
}

/// The GPA's answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GpaAnswer {
    /// Answer to [`GpaQuery::InteractionCount`].
    InteractionCount(u64),
    /// Answer to [`GpaQuery::ClassSummary`] (None: never observed).
    ClassSummary(Option<ClassSummary>),
    /// Answer to [`GpaQuery::NodeLoad`] (None: no reports yet).
    NodeLoad(Option<NodeLoadView>),
    /// Answer to [`GpaQuery::AllClassSummaries`].
    AllClassSummaries(Vec<ClassSummary>),
    /// The query could not be decoded.
    BadQuery,
}

/// One query/answer exchange, tagged so answers match questions.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QueryEnvelope {
    id: u64,
    reply_to: EndPoint,
    query: GpaQuery,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AnswerEnvelope {
    id: u64,
    answer: GpaAnswer,
}

/// The GPA-side query sink. Installed by
/// [`SysProf::deploy`](crate::SysProf::deploy) on the GPA node at
/// [`QUERY_PORT`].
pub struct GpaQuerySink {
    gpa: Rc<RefCell<Gpa>>,
}

impl GpaQuerySink {
    /// A sink answering from `gpa`.
    pub fn new(gpa: Rc<RefCell<Gpa>>) -> Self {
        GpaQuerySink { gpa }
    }
}

impl KernelSink for GpaQuerySink {
    fn on_message(
        &mut self,
        _now_wall: SimTime,
        _node: NodeId,
        _src: EndPoint,
        _msg: Message,
        data: simos::Bytes,
    ) -> KernelOutput {
        let cost = SimDuration::from_micros(10); // lookup + encode
        let Ok(envelope) = serde_json::from_slice::<QueryEnvelope>(&data) else {
            return KernelOutput {
                cost,
                ..Default::default()
            };
        };
        let gpa = self.gpa.borrow();
        let answer = match envelope.query {
            GpaQuery::InteractionCount => GpaAnswer::InteractionCount(gpa.interaction_count()),
            GpaQuery::ClassSummary { node, class_port } => {
                GpaAnswer::ClassSummary(gpa.class_summary(node, Port(class_port)))
            }
            GpaQuery::NodeLoad { node } => GpaAnswer::NodeLoad(gpa.node_load(node)),
            GpaQuery::AllClassSummaries => GpaAnswer::AllClassSummaries(gpa.all_class_summaries()),
        };
        let reply = AnswerEnvelope {
            id: envelope.id,
            answer,
        };
        KernelOutput {
            cost,
            sends: vec![KernelSend {
                dst: envelope.reply_to,
                src_port: QUERY_PORT,
                kind: 0,
                data: serde_json::to_vec(&reply)
                    .expect("answers serialize")
                    .into(),
            }],
            rearm_after: None,
        }
    }
}

/// Client-side helper: installs a reply sink on the querying node and
/// sends queries to the GPA over the wire. Answers arrive asynchronously
/// (after simulated network + processing time) and are collected for the
/// caller to inspect.
pub struct QueryClient {
    node: NodeId,
    gpa_ep: EndPoint,
    reply_ep: EndPoint,
    next_id: u64,
    answers: Rc<RefCell<Vec<(u64, GpaAnswer)>>>,
}

struct ReplySink {
    answers: Rc<RefCell<Vec<(u64, GpaAnswer)>>>,
}

impl KernelSink for ReplySink {
    fn on_message(
        &mut self,
        _now_wall: SimTime,
        _node: NodeId,
        _src: EndPoint,
        _msg: Message,
        data: simos::Bytes,
    ) -> KernelOutput {
        if let Ok(envelope) = serde_json::from_slice::<AnswerEnvelope>(&data) {
            self.answers
                .borrow_mut()
                .push((envelope.id, envelope.answer));
        }
        KernelOutput {
            cost: SimDuration::from_micros(3),
            ..Default::default()
        }
    }
}

impl QueryClient {
    /// Sets up a query client on `node` targeting the GPA on `gpa_node`.
    /// Installs the reply sink at [`QUERY_REPLY_PORT`].
    pub fn install(world: &mut World, node: NodeId, gpa_node: NodeId) -> QueryClient {
        let answers = Rc::new(RefCell::new(Vec::new()));
        world.install_sink(
            node,
            QUERY_REPLY_PORT,
            Box::new(ReplySink {
                answers: answers.clone(),
            }),
        );
        QueryClient {
            node,
            gpa_ep: EndPoint::new(world.network().node_ip(gpa_node), QUERY_PORT),
            reply_ep: EndPoint::new(world.network().node_ip(node), QUERY_REPLY_PORT),
            next_id: 1,
            answers,
        }
    }

    /// Sends a query; the answer arrives later (simulated time must
    /// advance). Returns the query id for matching.
    pub fn send(&mut self, world: &mut World, query: GpaQuery) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = QueryEnvelope {
            id,
            reply_to: self.reply_ep,
            query,
        };
        world.kernel_send(
            self.node,
            QUERY_REPLY_PORT,
            self.gpa_ep,
            0,
            serde_json::to_vec(&envelope).expect("queries serialize"),
        );
        id
    }

    /// The answer to query `id`, if it has arrived.
    pub fn answer(&self, id: u64) -> Option<GpaAnswer> {
        self.answers
            .borrow()
            .iter()
            .find(|(aid, _)| *aid == id)
            .map(|(_, a)| a.clone())
    }

    /// Number of answers received so far.
    pub fn answers_received(&self) -> usize {
        self.answers.borrow().len()
    }
}
