//! The Local Performance Analyzer: message/interaction extraction and
//! resource attribution from raw Kprof events.
//!
//! §2 of the paper defines the black-box abstraction this module
//! implements: "A series of packets from node_A to node_B without any
//! intervening packets in the opposite direction constitute one
//! *message*. An *interaction* consists of a message pair in the opposite
//! direction." The LPA watches network events for message boundaries and
//! scheduling events for CPU attribution — it never reads application
//! payloads or ids (SysProf is a black-box monitor).
//!
//! Known, deliberate limitation (also the paper's): multiple interleaved
//! requests on one flow collapse into a single message, so their
//! interactions cannot be separated without domain knowledge.

use std::collections::{HashMap, HashSet, VecDeque};

use kprof::{
    Analyzer, AnalyzerOutcome, BlockReason, Event, EventMask, EventPayload, Interest, NetPoint,
    PerCpuBuffers, Pid, Predicate,
};
use simcore::stats::OnlineStats;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FlowKey, Ip, Port};

use crate::records::InteractionRecord;

/// LPA configuration — the knobs the SysProf controller turns.
#[derive(Debug, Clone)]
pub struct LpaConfig {
    /// Per-CPU double-buffer side capacity, in records ("window size" —
    /// changeable dynamically via the controller).
    pub window: usize,
    /// CPUs on the node (one double buffer each).
    pub cpus: usize,
    /// Base analysis cost reported per delivered event.
    pub per_event_cost: SimDuration,
    /// Additional cost when an interaction record is completed.
    pub per_record_cost: SimDuration,
    /// Track scheduling events for user/blocked attribution. Turning this
    /// off halves event volume but zeroes `user_us`/`blocked_us`.
    pub track_scheduling: bool,
    /// Aggregate per service class instead of staging every interaction
    /// (the controller's "statistics for some client class rather than
    /// for individual interactions" mode).
    pub class_only: bool,
    /// Only diagnose flows whose responder port is in this set (None =
    /// all). Maps to a Kprof predicate.
    pub service_ports: Option<HashSet<Port>>,
    /// Flows touching these ports are ignored entirely (SysProf's own
    /// dissemination traffic must not be diagnosed as interactions).
    pub exclude_ports: HashSet<Port>,
    /// A message with no packets for this long is considered closed (the
    /// eviction that lets the *last* interaction of a conversation
    /// complete without waiting for a next request). Applied by
    /// [`Lpa::flush_idle`], which the dissemination daemon calls on its
    /// periodic wake.
    pub idle_close: SimDuration,
    /// Use ARM-style application correlators when events carry them
    /// (processes opted in via `World::enable_arm`). Separates interleaved
    /// requests on one flow — the paper's §2 caveat: "Multiple requests
    /// may interleave, in which case domain-specific knowledge and/or ARM
    /// support would be necessary." Flows without correlators fall back
    /// to black-box message pairing.
    pub use_arm_hints: bool,
}

impl Default for LpaConfig {
    fn default() -> Self {
        LpaConfig {
            window: 256,
            cpus: 1,
            per_event_cost: SimDuration::from_nanos(350),
            per_record_cost: SimDuration::from_nanos(500),
            track_scheduling: true,
            class_only: false,
            service_ports: None,
            exclude_ports: [crate::daemon::DATA_PORT, crate::daemon::CONTROL_PORT]
                .into_iter()
                .collect(),
            idle_close: SimDuration::from_millis(50),
            use_arm_hints: false,
        }
    }
}

/// Message direction relative to the observing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    In,
    Out,
}

/// Accumulator for the message currently growing on a flow.
#[derive(Debug, Clone)]
struct MsgAcc {
    dir: Dir,
    /// The directed flow of this message's packets.
    flow: FlowKey,
    first_wall: SimTime,
    last_wall: SimTime,
    packets: u32,
    bytes: u64,
    /// Inbound: wall time of the last user-space delivery seen.
    deliver_last: Option<SimTime>,
    /// Outbound: wall time of the last NIC-transmit-complete seen.
    tx_last_nic: Option<SimTime>,
    /// Serving/initiating process, when the stack knew it.
    pid: Option<Pid>,
}

/// A closed message, kept as the candidate first half of an interaction.
#[derive(Debug, Clone)]
struct ClosedMsg {
    acc: MsgAcc,
    /// Pid-clock snapshot at the message's "request delivered" moment
    /// (run, blocked, blocked_io) — basis for user/blocked attribution.
    snap: Option<(SimDuration, SimDuration, SimDuration)>,
    /// How many interaction windows of the serving process were open when
    /// this message's window closed — the fair-share divisor for run-time
    /// attribution across interleaved requests.
    share: u32,
}

#[derive(Debug, Default)]
struct FlowState {
    cur: Option<MsgAcc>,
    prev: Option<ClosedMsg>,
    /// Latest snapshot taken at a delivery (or socket-buffer for kernel
    /// daemons) event of the current inbound message.
    deliver_snap: Option<(SimDuration, SimDuration, SimDuration)>,
    /// The pid whose open-window count this flow's current inbound
    /// message incremented (cleared when the window closes).
    window_pid: Option<Pid>,
}

/// Per-correlator tracking state used when ARM hints are active: the
/// request and response accumulate independently per application message
/// id, so interleaved requests on one flow stay separate.
#[derive(Debug)]
struct ArmState {
    req: Option<MsgAcc>,
    resp: Option<MsgAcc>,
    snap: Option<(SimDuration, SimDuration, SimDuration)>,
    window_pid: Option<Pid>,
    share: u32,
    last_wall: SimTime,
}

impl ArmState {
    fn new(now: SimTime) -> Self {
        ArmState {
            req: None,
            resp: None,
            snap: None,
            window_pid: None,
            share: 1,
            last_wall: now,
        }
    }
}

/// Per-process run/block clocks, maintained from scheduling events.
#[derive(Debug, Default, Clone)]
struct PidClock {
    running_since: Option<SimTime>,
    blocked_since: Option<(SimTime, BlockReason)>,
    cum_run: SimDuration,
    cum_blocked: SimDuration,
    cum_blocked_io: SimDuration,
}

impl PidClock {
    /// (run, blocked, blocked_io) as of `now`, interpolating open spans.
    fn snapshot(&self, now: SimTime) -> (SimDuration, SimDuration, SimDuration) {
        let mut run = self.cum_run;
        let mut blocked = self.cum_blocked;
        let mut blocked_io = self.cum_blocked_io;
        if let Some(since) = self.running_since {
            run += now.saturating_since(since);
        }
        if let Some((since, reason)) = self.blocked_since {
            let d = now.saturating_since(since);
            blocked += d;
            if reason == BlockReason::DiskIo {
                blocked_io += d;
            }
        }
        (run, blocked, blocked_io)
    }
}

/// Per-class aggregation (the reduced-granularity mode).
#[derive(Debug, Default, Clone)]
pub(crate) struct ClassAggr {
    pub count: u64,
    pub kernel_in_us: OnlineStats,
    pub user_us: OnlineStats,
    pub kernel_out_us: OnlineStats,
    pub total_us: OnlineStats,
    pub bytes: u64,
}

/// The Local Performance Analyzer. One per monitored node; registered
/// with the node's [`kprof::Kprof`].
pub struct Lpa {
    node: NodeId,
    node_ip: Ip,
    config: LpaConfig,
    flows: HashMap<FlowKey, FlowState>,
    /// ARM-correlated tracking, keyed by (canonical flow, correlator).
    arm_flows: HashMap<(FlowKey, u64), ArmState>,
    pids: HashMap<Pid, PidClock>,
    /// Interaction windows currently open per pid (request delivered,
    /// response not yet started). Used to fair-share run-time attribution
    /// across concurrently served requests.
    open_windows: HashMap<Pid, u32>,
    buffers: PerCpuBuffers<InteractionRecord>,
    /// "a window containing the past several interactions" — queryable
    /// recent history for procfs and the controller.
    window: VecDeque<InteractionRecord>,
    /// Cumulative per-class aggregates (never reset; procfs reads these).
    class_aggr: HashMap<Port, ClassAggr>,
    /// Per-class aggregates since the daemon last flushed.
    class_window: HashMap<Port, ClassAggr>,
    records_completed: u64,
    events_seen: u64,
    /// Set when a buffer switch happened while handling the current event
    /// (surfaced as `buffer_full` in the analyzer outcome).
    pending_switch: bool,
}

impl Lpa {
    /// Creates an LPA for `node` (whose interfaces carry `node_ip`).
    ///
    /// # Panics
    ///
    /// Panics if the window size or CPU count is zero.
    pub fn new(node: NodeId, node_ip: Ip, config: LpaConfig) -> Self {
        let buffers = PerCpuBuffers::new(config.cpus, config.window);
        Lpa {
            node,
            node_ip,
            config,
            flows: HashMap::new(),
            arm_flows: HashMap::new(),
            pids: HashMap::new(),
            open_windows: HashMap::new(),
            buffers,
            window: VecDeque::new(),
            class_aggr: HashMap::new(),
            class_window: HashMap::new(),
            records_completed: 0,
            events_seen: 0,
            pending_switch: false,
        }
    }

    /// Reconfigures at runtime (controller action). Buffer sizes apply to
    /// newly created buffers; staged records are preserved.
    pub fn reconfigure(&mut self, config: LpaConfig) {
        if config.window != self.config.window || config.cpus != self.config.cpus {
            let staged = self.buffers.drain_all();
            let mut fresh = PerCpuBuffers::new(config.cpus, config.window);
            for r in staged {
                fresh.cpu_mut(0).push(r);
            }
            self.buffers = fresh;
        }
        self.config = config;
    }

    /// The current configuration.
    pub fn config(&self) -> &LpaConfig {
        &self.config
    }

    /// Drains every staged record (what the dissemination daemon copies
    /// out on a wake).
    pub fn drain(&mut self) -> Vec<InteractionRecord> {
        self.buffers.drain_all()
    }

    /// Closes messages that have been idle for at least the configured
    /// [`LpaConfig::idle_close`], completing any interactions they end.
    /// Returns how many messages were closed. Called by the dissemination
    /// daemon's periodic wake (the "window contents are evicted … after
    /// some time" behavior of §2).
    pub fn flush_idle(&mut self, now: SimTime) -> usize {
        let mut stale: Vec<FlowKey> = self
            .flows
            .iter()
            .filter(|(_, st)| {
                st.cur
                    .as_ref()
                    .map(|c| now.saturating_since(c.last_wall) >= self.config.idle_close)
                    .unwrap_or(false)
            })
            .map(|(k, _)| *k)
            .collect();
        // Close in key order: each close emits a record, and record order
        // must be identical across replays of the same seed.
        stale.sort();
        let mut closed = 0;
        for canon in stale {
            let Some(state) = self.flows.get_mut(&canon) else {
                continue;
            };
            let Some(acc) = state.cur.take() else {
                continue;
            };
            let snap = state.deliver_snap.take();
            let share = Self::close_window(
                &mut self.open_windows,
                self.flows.get_mut(&canon).expect("state exists"),
            );
            closed += 1;
            self.close_message(canon, ClosedMsg { acc, snap, share }, now, 0);
        }
        closed += self.flush_idle_arm(now);
        closed
    }

    /// Records lost because the daemon was too slow ("if the data is not
    /// picked up in a timely fashion, it may be overwritten").
    pub fn overwritten(&self) -> u64 {
        self.buffers.overwritten()
    }

    /// Total interaction records completed.
    pub fn records_completed(&self) -> u64 {
        self.records_completed
    }

    /// Total events this analyzer processed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The recent-interaction window (most recent last).
    pub fn window_snapshot(&self) -> impl Iterator<Item = &InteractionRecord> {
        self.window.iter()
    }

    /// Per-class aggregates (populated in `class_only` mode; also usable
    /// as cheap summaries in full mode). Returns (count, mean kernel-in
    /// µs, mean user µs, mean total µs) per class port.
    pub fn class_summaries(&self) -> Vec<(Port, u64, f64, f64, f64)> {
        let mut out: Vec<_> = self
            .class_aggr
            .iter()
            .map(|(port, a)| {
                (
                    *port,
                    a.count,
                    a.kernel_in_us.mean(),
                    a.user_us.mean(),
                    a.total_us.mean(),
                )
            })
            .collect();
        out.sort_by_key(|(p, ..)| *p);
        out
    }

    /// Takes and resets the per-flush-window class aggregates (daemon
    /// flush). The cumulative aggregates behind
    /// [`class_summaries`](Lpa::class_summaries) are unaffected.
    pub fn take_class_aggregates(&mut self) -> Vec<(Port, (u64, f64, f64, f64))> {
        // Sorted by port: consumers fold these with f64 accumulators, so
        // the iteration order must not depend on HashMap hash state.
        let mut out: Vec<_> = self
            .class_window
            .iter()
            .map(|(p, a)| {
                (
                    *p,
                    (
                        a.count,
                        a.kernel_in_us.mean(),
                        a.user_us.mean(),
                        a.total_us.mean(),
                    ),
                )
            })
            .collect();
        out.sort_by_key(|(p, _)| *p);
        self.class_window.clear();
        out
    }

    // ------------------------------------------------------------------

    fn dir_of(&self, flow: &FlowKey) -> Dir {
        if flow.dst.ip == self.node_ip {
            Dir::In
        } else {
            Dir::Out
        }
    }

    fn excluded(&self, flow: &FlowKey) -> bool {
        self.config.exclude_ports.contains(&flow.src.port)
            || self.config.exclude_ports.contains(&flow.dst.port)
    }

    fn matches_service(&self, class_port: Port) -> bool {
        match &self.config.service_ports {
            Some(ports) => ports.contains(&class_port),
            None => true,
        }
    }

    /// Closes the current inbound window on a flow state, returning the
    /// fair-share divisor observed at close.
    fn close_window(open_windows: &mut HashMap<Pid, u32>, state: &mut FlowState) -> u32 {
        match state.window_pid.take() {
            Some(p) => {
                let n = open_windows.entry(p).or_insert(1);
                let share = (*n).max(1);
                *n = n.saturating_sub(1);
                share
            }
            None => 1,
        }
    }

    fn pid_snapshot(
        &self,
        pid: Option<Pid>,
        now: SimTime,
    ) -> Option<(SimDuration, SimDuration, SimDuration)> {
        let pid = pid?;
        // A process with no scheduling history yet has a zero clock (it
        // simply has not run since monitoring started) — that is a valid
        // snapshot, not an unknown one.
        Some(self.pids.get(&pid).map(|c| c.snapshot(now)).unwrap_or((
            SimDuration::ZERO,
            SimDuration::ZERO,
            SimDuration::ZERO,
        )))
    }

    /// Handles a packet observation that can open/extend/close messages.
    fn observe_packet(
        &mut self,
        flow: FlowKey,
        wall: SimTime,
        size: u32,
        pid: Option<Pid>,
        cpu: u16,
    ) -> bool {
        let dir = self.dir_of(&flow);
        let canon = flow.canonical();
        let state = self.flows.entry(canon).or_default();

        match &mut state.cur {
            Some(cur) if cur.dir == dir => {
                cur.last_wall = wall;
                cur.packets += 1;
                cur.bytes += size as u64;
                if cur.pid.is_none() {
                    cur.pid = pid;
                }
                false
            }
            cur_slot => {
                // Direction change (or first packet): close current, start new.
                let closed = cur_slot.take();
                *cur_slot = Some(MsgAcc {
                    dir,
                    flow,
                    first_wall: wall,
                    last_wall: wall,
                    packets: 1,
                    bytes: size as u64,
                    deliver_last: None,
                    tx_last_nic: None,
                    pid,
                });
                if let Some(closed) = closed {
                    let snap = state.deliver_snap.take();
                    let share = Self::close_window(
                        &mut self.open_windows,
                        self.flows.get_mut(&canon).expect("state exists"),
                    );
                    let closed = ClosedMsg {
                        acc: closed,
                        snap,
                        share,
                    };
                    return self.close_message(canon, closed, wall, cpu);
                }
                false
            }
        }
    }

    /// A message just closed; pair it with the previous opposite message
    /// into an interaction, or hold it as the next candidate. Returns
    /// whether a record was completed.
    fn close_message(&mut self, canon: FlowKey, closed: ClosedMsg, now: SimTime, cpu: u16) -> bool {
        let state = self.flows.get_mut(&canon).expect("state exists");
        match state.prev.take() {
            None => {
                state.prev = Some(closed);
                false
            }
            Some(first) if first.acc.dir == closed.acc.dir => {
                // Two same-direction messages in a row (idle flush closed a
                // request whose response never arrived, then another
                // request). The stale candidate had no partner: drop it and
                // keep the fresh message as the new candidate.
                state.prev = Some(closed);
                false
            }
            Some(first) => {
                self.complete_interaction(first, closed, now, cpu);
                true
            }
        }
    }

    /// Builds and stages the interaction record for a (first, second)
    /// message pair.
    fn complete_interaction(
        &mut self,
        first: ClosedMsg,
        second: ClosedMsg,
        now: SimTime,
        cpu: u16,
    ) {
        let responder_side = first.acc.dir == Dir::In;
        let request = &first.acc;
        let response = &second.acc;

        let class_port = request.flow.dst.port;
        if !self.matches_service(class_port) {
            return;
        }

        let start = request.first_wall;
        let mut resp_end = response
            .tx_last_nic
            .unwrap_or(response.last_wall)
            .max(response.last_wall)
            // Adversarially reordered streams can present a "response" that
            // predates its request; clamp so spans never run backwards.
            .max(start);
        // Initiator-side observations: the interaction truly ends when the
        // response is delivered to the local application, which can be
        // after its last packet hits the wire/NIC.
        if let Some(d) = response.deliver_last {
            resp_end = resp_end.max(d);
        }

        let (kernel_in, user_us, kernel_out, blocked, blocked_io, pid) = if responder_side {
            // Full attribution: we are where the server runs.
            let deliver = request.deliver_last;
            let kernel_in = deliver
                .unwrap_or(response.first_wall)
                .saturating_since(request.first_wall);
            let kernel_out = resp_end.saturating_since(response.first_wall);
            let pid = request.pid.or(response.pid);
            // User/blocked: pid-clock delta between request delivery and
            // response submission.
            // Fair-share attribution: the pid clock's run time inside the
            // window includes work for every concurrently open interaction
            // of this process; divide by the number of windows open when
            // this one closed. (The paper acknowledges interleaved
            // requests cannot be separated without domain knowledge; this
            // is the even-split heuristic.)
            let share = (first.share as u64).max(1);
            let (user, blocked, blocked_io) =
                match (first.snap, self.pid_snapshot(pid, response.first_wall)) {
                    (Some((run0, blk0, io0)), Some((run1, blk1, io1))) => (
                        run1.saturating_sub(run0) / share,
                        blk1.saturating_sub(blk0) / share,
                        io1.saturating_sub(io0) / share,
                    ),
                    _ => (SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO),
                };
            (kernel_in, user, kernel_out, blocked, blocked_io, pid)
        } else {
            // Initiator side: we see the round trip; response delivery
            // time is the local kernel share.
            let kernel_in = second
                .acc
                .deliver_last
                .map(|d| d.saturating_since(response.first_wall))
                .unwrap_or(SimDuration::ZERO);
            (
                kernel_in,
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
                request.pid.or(response.pid),
            )
        };

        let record = InteractionRecord {
            node: self.node,
            flow: request.flow,
            class_port,
            pid: pid.map(|p| p.0).unwrap_or(0),
            start_us: start.as_micros(),
            end_us: resp_end.as_micros(),
            req_packets: request.packets,
            req_bytes: request.bytes,
            resp_packets: response.packets,
            resp_bytes: response.bytes,
            kernel_in_us: kernel_in.as_micros(),
            user_us: user_us.as_micros(),
            kernel_out_us: kernel_out.as_micros(),
            blocked_us: blocked.as_micros(),
            blocked_io_us: blocked_io.as_micros(),
        };

        self.records_completed += 1;
        let _ = now;

        // Recent-history window.
        self.window.push_back(record);
        while self.window.len() > self.config.window {
            self.window.pop_front();
        }

        // Class aggregates are always cheap to keep: one cumulative copy
        // (procfs) and one flush-window copy (daemon load reports).
        for aggr in [
            self.class_aggr.entry(class_port).or_default(),
            self.class_window.entry(class_port).or_default(),
        ] {
            aggr.count += 1;
            aggr.kernel_in_us.record(record.kernel_in_us as f64);
            aggr.user_us.record(record.user_us as f64);
            aggr.kernel_out_us.record(record.kernel_out_us as f64);
            aggr.total_us
                .record(record.end_us.saturating_sub(record.start_us) as f64);
            aggr.bytes += record.req_bytes + record.resp_bytes;
        }

        if !self.config.class_only {
            self.staged_push(cpu, record);
        }
    }

    fn staged_push(&mut self, cpu: u16, record: InteractionRecord) {
        let cpu = (cpu as usize % self.buffers.cpus()) as u16;
        // The buffer-full switch cost is folded into the analyzer cost
        // reported for this event (see on_event).
        self.pending_switch |= self.buffers.cpu_mut(cpu).push(record).is_some();
    }
}

// pending_switch is transient state between helpers within one on_event
// call; declared here to keep the struct definition readable above.
impl Lpa {
    fn sched_event(&mut self, ev: &Event) {
        match ev.payload {
            EventPayload::ContextSwitch { from, to } => {
                let now = ev.wall;
                if let Some(pid) = from {
                    let clock = self.pids.entry(pid).or_default();
                    if let Some(since) = clock.running_since.take() {
                        clock.cum_run += now.saturating_since(since);
                    }
                }
                if let Some(pid) = to {
                    let clock = self.pids.entry(pid).or_default();
                    clock.running_since = Some(now);
                    // Switching in ends any blocked span (wake may have
                    // been missed if masks changed at runtime).
                    if let Some((since, reason)) = clock.blocked_since.take() {
                        let d = now.saturating_since(since);
                        clock.cum_blocked += d;
                        if reason == BlockReason::DiskIo {
                            clock.cum_blocked_io += d;
                        }
                    }
                }
            }
            EventPayload::ProcessBlock { pid, reason } => {
                let now = ev.wall;
                let clock = self.pids.entry(pid).or_default();
                if let Some(since) = clock.running_since.take() {
                    clock.cum_run += now.saturating_since(since);
                }
                clock.blocked_since = Some((now, reason));
            }
            EventPayload::ProcessWake { pid } => {
                let now = ev.wall;
                let clock = self.pids.entry(pid).or_default();
                if let Some((since, reason)) = clock.blocked_since.take() {
                    let d = now.saturating_since(since);
                    clock.cum_blocked += d;
                    if reason == BlockReason::DiskIo {
                        clock.cum_blocked_io += d;
                    }
                }
            }
            EventPayload::ProcessExit { pid } => {
                self.pids.remove(&pid);
            }
            _ => {}
        }
    }

    fn net_event(&mut self, ev: &Event) -> bool {
        let EventPayload::Net {
            point,
            flow,
            size,
            pid,
            arm,
            ..
        } = ev.payload
        else {
            return false;
        };
        if self.excluded(&flow) {
            return false;
        }
        if self.config.use_arm_hints {
            if let Some(arm) = arm {
                return self.arm_event(point, flow, ev.wall, size, pid, arm, ev.cpu);
            }
        }
        match point {
            NetPoint::RxNic => self.observe_packet(flow, ev.wall, size, pid, ev.cpu),
            NetPoint::TxFromUser => self.observe_packet(flow, ev.wall, size, pid, ev.cpu),
            NetPoint::RxSocketBuffer => {
                // For kernel daemons there is no user delivery; keep the
                // snapshot fresh from the socket-buffer point instead.
                let canon = flow.canonical();
                let snap = self.pid_snapshot(pid, ev.wall);
                if let Some(state) = self.flows.get_mut(&canon) {
                    if let Some(cur) = &mut state.cur {
                        if cur.dir == Dir::In {
                            if cur.pid.is_none() {
                                cur.pid = pid;
                            }
                            if cur.deliver_last.is_none() {
                                // Only a fallback: real deliveries override.
                                if state.deliver_snap.is_none() && state.window_pid.is_none() {
                                    if let Some(p) = pid.or(cur.pid) {
                                        state.window_pid = Some(p);
                                        *self.open_windows.entry(p).or_insert(0) += 1;
                                    }
                                }
                                state.deliver_snap = snap.or(state.deliver_snap);
                            }
                        }
                    }
                }
                false
            }
            NetPoint::RxDeliverUser => {
                let canon = flow.canonical();
                let snap = self.pid_snapshot(pid, ev.wall);
                let mut opened = None;
                if let Some(state) = self.flows.get_mut(&canon) {
                    if let Some(cur) = &mut state.cur {
                        if cur.dir == Dir::In {
                            cur.deliver_last = Some(ev.wall);
                            if cur.pid.is_none() {
                                cur.pid = pid;
                            }
                            if state.window_pid.is_none() {
                                opened = pid.or(cur.pid);
                                state.window_pid = opened;
                            }
                            state.deliver_snap = snap.or(state.deliver_snap);
                        }
                    }
                }
                if let Some(p) = opened {
                    *self.open_windows.entry(p).or_insert(0) += 1;
                }
                false
            }
            NetPoint::TxNicDone => {
                let canon = flow.canonical();
                if let Some(state) = self.flows.get_mut(&canon) {
                    if let Some(cur) = &mut state.cur {
                        if cur.dir == Dir::Out {
                            cur.tx_last_nic = Some(ev.wall);
                        }
                    }
                }
                false
            }
            NetPoint::TxDeviceQueue | NetPoint::Drop => false,
        }
    }
}

impl Lpa {
    /// Handles a network event that carries an ARM correlator. Returns
    /// whether an interaction record completed.
    #[allow(clippy::too_many_arguments)]
    fn arm_event(
        &mut self,
        point: NetPoint,
        flow: FlowKey,
        wall: SimTime,
        size: u32,
        pid: Option<Pid>,
        arm: u64,
        cpu: u16,
    ) -> bool {
        let dir = self.dir_of(&flow);
        let canon = flow.canonical();
        let key = (canon, arm);

        match point {
            NetPoint::RxNic | NetPoint::TxFromUser => {
                // A packet observation: extend this correlator's request
                // or response run, then see whether it finishes any other
                // correlator on the same flow (responses are contiguous
                // per send, so a packet of a different id ends them).
                let completed = self.arm_complete_others(canon, arm, cpu);
                let st = self
                    .arm_flows
                    .entry(key)
                    .or_insert_with(|| ArmState::new(wall));
                st.last_wall = wall;
                let slot = if dir == Dir::In {
                    &mut st.req
                } else {
                    &mut st.resp
                };
                match slot {
                    Some(acc) => {
                        acc.last_wall = wall;
                        acc.packets += 1;
                        acc.bytes += size as u64;
                        if acc.pid.is_none() {
                            acc.pid = pid;
                        }
                    }
                    None => {
                        *slot = Some(MsgAcc {
                            dir,
                            flow,
                            first_wall: wall,
                            last_wall: wall,
                            packets: 1,
                            bytes: size as u64,
                            deliver_last: None,
                            tx_last_nic: None,
                            pid,
                        });
                        // The response starting closes this correlator's
                        // attribution window.
                        if dir == Dir::Out {
                            let st = self.arm_flows.get_mut(&key).expect("just touched");
                            if let Some(p) = st.window_pid.take() {
                                let n = self.open_windows.entry(p).or_insert(1);
                                st.share = (*n).max(1);
                                *n = n.saturating_sub(1);
                            }
                        }
                    }
                }
                completed
            }
            NetPoint::RxSocketBuffer => {
                let snap = self.pid_snapshot(pid, wall);
                if let Some(st) = self.arm_flows.get_mut(&key) {
                    st.last_wall = wall;
                    if let Some(req) = &mut st.req {
                        if req.pid.is_none() {
                            req.pid = pid;
                        }
                        if req.deliver_last.is_none() && st.snap.is_none() {
                            if let Some(p) = pid.or(req.pid) {
                                if st.window_pid.is_none() {
                                    st.window_pid = Some(p);
                                    *self.open_windows.entry(p).or_insert(0) += 1;
                                }
                            }
                            st.snap = snap;
                        }
                    }
                }
                false
            }
            NetPoint::RxDeliverUser => {
                let snap = self.pid_snapshot(pid, wall);
                let mut opened = None;
                if let Some(st) = self.arm_flows.get_mut(&key) {
                    st.last_wall = wall;
                    let resp_started = st.resp.is_some();
                    // The inbound message is the request at the responder
                    // and the response at the initiator; update whichever
                    // slot holds the inbound run.
                    let inbound_is_req = st.req.as_ref().map(|m| m.dir == Dir::In).unwrap_or(false);
                    if inbound_is_req {
                        // A request delivery after its response started can
                        // only come from a reordered stream; it must not
                        // stretch the attribution window.
                        if !resp_started {
                            if let Some(req) = &mut st.req {
                                req.deliver_last = Some(wall);
                                if req.pid.is_none() {
                                    req.pid = pid;
                                }
                                if st.window_pid.is_none() {
                                    opened = pid.or(req.pid);
                                    st.window_pid = opened;
                                }
                                st.snap = snap.or(st.snap);
                            }
                        }
                    } else if let Some(resp) = &mut st.resp {
                        if resp.dir == Dir::In {
                            resp.deliver_last = Some(wall);
                            if resp.pid.is_none() {
                                resp.pid = pid;
                            }
                        }
                    }
                }
                if let Some(p) = opened {
                    *self.open_windows.entry(p).or_insert(0) += 1;
                }
                false
            }
            NetPoint::TxNicDone => {
                if let Some(st) = self.arm_flows.get_mut(&key) {
                    st.last_wall = wall;
                    if let Some(resp) = &mut st.resp {
                        resp.tx_last_nic = Some(wall);
                    }
                }
                false
            }
            NetPoint::TxDeviceQueue | NetPoint::Drop => false,
        }
    }

    /// Completes every *other* correlator on `canon` that already has a
    /// response (a packet of a different id means their response run is
    /// over). Returns whether any record completed.
    fn arm_complete_others(&mut self, canon: FlowKey, current: u64, cpu: u16) -> bool {
        let mut ready: Vec<(FlowKey, u64)> = self
            .arm_flows
            .iter()
            .filter(|((f, id), st)| {
                *f == canon && *id != current && st.req.is_some() && st.resp.is_some()
            })
            .map(|(k, _)| *k)
            .collect();
        // arm_finish emits records; finish in key order, not hash order.
        ready.sort();
        let mut any = false;
        for key in ready {
            any |= self.arm_finish(key, cpu);
        }
        any
    }

    /// Emits the interaction record for a finished correlator state.
    fn arm_finish(&mut self, key: (FlowKey, u64), cpu: u16) -> bool {
        let Some(st) = self.arm_flows.remove(&key) else {
            return false;
        };
        // Release an unclosed window (response never started).
        if let Some(p) = st.window_pid {
            if let Some(n) = self.open_windows.get_mut(&p) {
                *n = n.saturating_sub(1);
            }
        }
        let (Some(req), Some(resp)) = (st.req, st.resp) else {
            return false;
        };
        let first = ClosedMsg {
            acc: req,
            snap: st.snap,
            share: st.share,
        };
        let second = ClosedMsg {
            acc: resp,
            snap: None,
            share: 1,
        };
        self.complete_interaction(first, second, st.last_wall, cpu);
        true
    }

    /// Flushes idle ARM states: completed pairs emit records; stale
    /// request-only states are evicted. Returns completions.
    fn flush_idle_arm(&mut self, now: SimTime) -> usize {
        let mut stale: Vec<((FlowKey, u64), bool)> = self
            .arm_flows
            .iter()
            .filter(|(_, st)| now.saturating_since(st.last_wall) >= self.config.idle_close)
            .map(|(k, st)| (*k, st.req.is_some() && st.resp.is_some()))
            .collect();
        // Completions emit records; flush in key order, not hash order.
        stale.sort_by_key(|&(k, _)| k);
        let mut completed = 0;
        for (key, finishable) in stale {
            if finishable {
                if self.arm_finish(key, 0) {
                    completed += 1;
                }
            } else if let Some(st) = self.arm_flows.remove(&key) {
                if let Some(p) = st.window_pid {
                    if let Some(n) = self.open_windows.get_mut(&p) {
                        *n = n.saturating_sub(1);
                    }
                }
            }
        }
        completed
    }
}

impl Analyzer for Lpa {
    fn name(&self) -> &str {
        "lpa"
    }

    fn interest(&self) -> Interest {
        let mut mask = EventMask::NETWORK;
        if self.config.track_scheduling {
            mask |= EventMask::SCHEDULING;
        }
        Interest {
            mask,
            predicate: Predicate::new(),
        }
    }

    fn on_event(&mut self, event: &Event) -> AnalyzerOutcome {
        self.events_seen += 1;
        self.pending_switch = false;
        let mut cost = self.config.per_event_cost;
        match event.class() {
            kprof::EventClass::Scheduling => self.sched_event(event),
            kprof::EventClass::Network if self.net_event(event) => {
                cost += self.config.per_record_cost;
            }
            _ => {}
        }
        AnalyzerOutcome {
            cost,
            buffer_full: self.pending_switch,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{EndPoint, PacketId};

    const ME: Ip = Ip(0x0A000002);
    const CLIENT: Ip = Ip(0x0A000001);

    fn lpa() -> Lpa {
        Lpa::new(NodeId(1), ME, LpaConfig::default())
    }

    fn req_flow() -> FlowKey {
        FlowKey::new(
            EndPoint::new(CLIENT, Port(40000)),
            EndPoint::new(ME, Port(2049)),
        )
    }

    fn ev(wall_us: u64, payload: EventPayload) -> Event {
        Event {
            seq: 0,
            node: NodeId(1),
            cpu: 0,
            wall: SimTime::from_micros(wall_us),
            payload,
        }
    }

    fn net(wall_us: u64, point: NetPoint, flow: FlowKey, size: u32, pid: Option<Pid>) -> Event {
        ev(
            wall_us,
            EventPayload::Net {
                point,
                flow,
                packet: PacketId(wall_us),
                size,
                pid,
                arm: None,
            },
        )
    }

    /// Feeds one full request/response exchange; returns completion state.
    fn one_exchange(l: &mut Lpa, base_us: u64) {
        let rf = req_flow();
        let tf = rf.reversed();
        let pid = Some(Pid(7));
        // Request: two packets arrive, get buffered, get delivered.
        l.on_event(&net(base_us, NetPoint::RxNic, rf, 1500, None));
        l.on_event(&net(base_us + 12, NetPoint::RxNic, rf, 600, None));
        l.on_event(&net(base_us + 20, NetPoint::RxSocketBuffer, rf, 1500, pid));
        l.on_event(&net(base_us + 25, NetPoint::RxSocketBuffer, rf, 600, pid));
        l.on_event(&net(base_us + 300, NetPoint::RxDeliverUser, rf, 1500, pid));
        l.on_event(&net(base_us + 305, NetPoint::RxDeliverUser, rf, 600, pid));
        // Server computes 100 µs (scheduling events drive the pid clock).
        l.on_event(&ev(
            base_us + 310,
            EventPayload::ContextSwitch {
                from: None,
                to: pid,
            },
        ));
        l.on_event(&ev(
            base_us + 410,
            EventPayload::ContextSwitch {
                from: pid,
                to: None,
            },
        ));
        // Response: one packet out.
        l.on_event(&net(base_us + 420, NetPoint::TxFromUser, tf, 200, pid));
        l.on_event(&net(base_us + 440, NetPoint::TxNicDone, tf, 200, None));
    }

    #[test]
    fn interaction_completes_on_next_request() {
        let mut l = lpa();
        one_exchange(&mut l, 1_000);
        assert_eq!(l.records_completed(), 0, "pair still open");
        // Next request closes the response message.
        l.on_event(&net(5_000, NetPoint::RxNic, req_flow(), 800, None));
        assert_eq!(l.records_completed(), 1);
        let rec = l.window_snapshot().next().unwrap();
        assert_eq!(rec.class_port, Port(2049));
        assert_eq!(rec.pid, 7);
        assert_eq!(rec.req_packets, 2);
        assert_eq!(rec.req_bytes, 2100);
        assert_eq!(rec.resp_packets, 1);
        assert_eq!(rec.start_us, 1_000);
        assert_eq!(rec.end_us, 1_440, "ends at NIC tx done");
        // kernel_in: first RxNic (1000) -> last deliver (1305).
        assert_eq!(rec.kernel_in_us, 305);
        // user: pid ran 100 µs between delivery and send.
        assert_eq!(rec.user_us, 100);
        // kernel_out: TxFromUser (1420) -> TxNicDone (1440).
        assert_eq!(rec.kernel_out_us, 20);
    }

    #[test]
    fn idle_flush_completes_trailing_interaction() {
        let mut l = lpa();
        one_exchange(&mut l, 1_000);
        assert_eq!(l.records_completed(), 0);
        // Too early: nothing is idle long enough.
        assert_eq!(l.flush_idle(SimTime::from_micros(2_000)), 0);
        // 50 ms later the response message is stale and closes.
        assert_eq!(l.flush_idle(SimTime::from_millis(60)), 1);
        assert_eq!(l.records_completed(), 1);
    }

    #[test]
    fn back_to_back_interactions_all_complete() {
        let mut l = lpa();
        for i in 0..10 {
            one_exchange(&mut l, 1_000 + i * 10_000);
        }
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(l.records_completed(), 10);
        let drained = l.drain();
        assert_eq!(drained.len(), 10);
    }

    #[test]
    fn kernel_buffer_queueing_grows_kernel_in() {
        // Delay delivery (proxy busy): kernel_in grows, user stays.
        let mut l = lpa();
        let rf = req_flow();
        let tf = rf.reversed();
        let pid = Some(Pid(9));
        l.on_event(&net(1_000, NetPoint::RxNic, rf, 500, None));
        // Sits in the socket buffer for 5 ms before delivery.
        l.on_event(&net(6_000, NetPoint::RxDeliverUser, rf, 500, pid));
        l.on_event(&net(6_100, NetPoint::TxFromUser, tf, 100, pid));
        l.on_event(&net(6_120, NetPoint::TxNicDone, tf, 100, None));
        l.flush_idle(SimTime::from_secs(1));
        let rec = l.window_snapshot().next().unwrap();
        assert_eq!(rec.kernel_in_us, 5_000, "queueing shows up in kernel time");
    }

    #[test]
    fn kernel_daemon_has_zero_user_time() {
        // No RxDeliverUser events (in-kernel NFS server): everything
        // becomes kernel time.
        let mut l = lpa();
        let rf = req_flow();
        let tf = rf.reversed();
        let pid = Some(Pid(3));
        l.on_event(&net(1_000, NetPoint::RxNic, rf, 800, None));
        l.on_event(&net(1_010, NetPoint::RxSocketBuffer, rf, 800, pid));
        // 8 ms later (disk I/O) the reply goes out.
        l.on_event(&net(9_000, NetPoint::TxFromUser, tf, 100, pid));
        l.on_event(&net(9_020, NetPoint::TxNicDone, tf, 100, None));
        l.flush_idle(SimTime::from_secs(1));
        let rec = l.window_snapshot().next().unwrap();
        assert_eq!(rec.user_us, 0);
        assert_eq!(rec.kernel_in_us, 8_000, "rx -> response start");
        assert_eq!(rec.pid, 3);
    }

    #[test]
    fn blocked_time_attributed_from_sched_events() {
        let mut l = lpa();
        let rf = req_flow();
        let tf = rf.reversed();
        let pid = Pid(4);
        l.on_event(&net(1_000, NetPoint::RxNic, rf, 500, None));
        l.on_event(&net(1_100, NetPoint::RxDeliverUser, rf, 500, Some(pid)));
        // Process blocks on disk for 3 ms inside the window.
        l.on_event(&ev(
            1_200,
            EventPayload::ProcessBlock {
                pid,
                reason: BlockReason::DiskIo,
            },
        ));
        l.on_event(&ev(4_200, EventPayload::ProcessWake { pid }));
        l.on_event(&net(4_300, NetPoint::TxFromUser, tf, 100, Some(pid)));
        l.on_event(&net(4_320, NetPoint::TxNicDone, tf, 100, None));
        l.flush_idle(SimTime::from_secs(1));
        let rec = l.window_snapshot().next().unwrap();
        assert_eq!(rec.blocked_us, 3_000);
        assert_eq!(rec.blocked_io_us, 3_000);
    }

    #[test]
    fn monitoring_ports_are_excluded() {
        let mut l = lpa();
        let daemon_flow = FlowKey::new(
            EndPoint::new(CLIENT, Port(9997)),
            EndPoint::new(ME, Port(9999)),
        );
        l.on_event(&net(1_000, NetPoint::RxNic, daemon_flow, 500, None));
        l.on_event(&net(
            2_000,
            NetPoint::TxFromUser,
            daemon_flow.reversed(),
            500,
            None,
        ));
        l.on_event(&net(3_000, NetPoint::RxNic, daemon_flow, 500, None));
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(l.records_completed(), 0, "own traffic never diagnosed");
    }

    #[test]
    fn service_port_predicate_filters_classes() {
        let cfg = LpaConfig {
            service_ports: Some([Port(80)].into_iter().collect()),
            ..Default::default()
        };
        let mut l = Lpa::new(NodeId(1), ME, cfg);
        one_exchange(&mut l, 1_000); // class 2049: filtered out
        l.on_event(&net(5_000, NetPoint::RxNic, req_flow(), 800, None));
        assert_eq!(l.records_completed(), 0);
    }

    #[test]
    fn class_only_mode_aggregates_without_staging() {
        let cfg = LpaConfig {
            class_only: true,
            ..Default::default()
        };
        let mut l = Lpa::new(NodeId(1), ME, cfg);
        for i in 0..5 {
            one_exchange(&mut l, 1_000 + i * 10_000);
        }
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(l.records_completed(), 5);
        assert!(l.drain().is_empty(), "nothing staged per interaction");
        let classes = l.class_summaries();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].0, Port(2049));
        assert_eq!(classes[0].1, 5);
        // take drains the flush window but leaves the cumulative view.
        assert_eq!(l.take_class_aggregates().len(), 1);
        assert!(l.take_class_aggregates().is_empty(), "window drained");
        assert_eq!(l.class_summaries().len(), 1, "cumulative view persists");
    }

    #[test]
    fn interleaved_requests_collapse_into_one_message() {
        // The paper's documented limitation: two requests back to back
        // with no intervening response form ONE message.
        let mut l = lpa();
        let rf = req_flow();
        let tf = rf.reversed();
        l.on_event(&net(1_000, NetPoint::RxNic, rf, 500, None)); // req A
        l.on_event(&net(1_050, NetPoint::RxNic, rf, 500, None)); // req B (interleaved)
        l.on_event(&net(2_000, NetPoint::TxFromUser, tf, 100, Some(Pid(1)))); // resp A
        l.on_event(&net(2_050, NetPoint::TxFromUser, tf, 100, Some(Pid(1)))); // resp B
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(
            l.records_completed(),
            1,
            "two interleaved exchanges look like one interaction"
        );
        let rec = l.window_snapshot().next().unwrap();
        assert_eq!(rec.req_packets, 2);
        assert_eq!(rec.resp_packets, 2);
    }

    #[test]
    fn initiator_side_records_round_trip() {
        // Observing from the client node: Out(req) then In(resp).
        let mut l = Lpa::new(NodeId(0), CLIENT, LpaConfig::default());
        let rf = req_flow(); // CLIENT -> ME: outbound from CLIENT's view
        let back = rf.reversed();
        l.on_event(&net(1_000, NetPoint::TxFromUser, rf, 300, Some(Pid(2))));
        l.on_event(&net(1_020, NetPoint::TxNicDone, rf, 300, None));
        l.on_event(&net(3_000, NetPoint::RxNic, back, 150, None));
        l.on_event(&net(
            3_200,
            NetPoint::RxDeliverUser,
            back,
            150,
            Some(Pid(2)),
        ));
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(l.records_completed(), 1);
        let rec = l.window_snapshot().next().unwrap();
        // Request flow oriented from the initiator.
        assert_eq!(rec.flow.src.ip, CLIENT);
        assert_eq!(rec.class_port, Port(2049));
        assert_eq!(rec.user_us, 0, "initiator cannot attribute server time");
        assert!(rec.end_us > rec.start_us);
    }

    #[test]
    fn window_is_bounded() {
        let cfg = LpaConfig {
            window: 3,
            ..Default::default()
        };
        let mut l = Lpa::new(NodeId(1), ME, cfg);
        for i in 0..10 {
            one_exchange(&mut l, 1_000 + i * 10_000);
        }
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(l.window_snapshot().count(), 3, "window keeps the last N");
    }

    #[test]
    fn buffer_full_notification_fires() {
        let cfg = LpaConfig {
            window: 2, // tiny buffers
            ..Default::default()
        };
        let mut l = Lpa::new(NodeId(1), ME, cfg);
        let mut notified = false;
        for i in 0..6 {
            one_exchange(&mut l, 1_000 + i * 10_000);
            let boundary = net(
                1_000 + (i + 1) * 10_000 - 100,
                NetPoint::RxNic,
                req_flow(),
                1,
                None,
            );
            let out = l.on_event(&boundary);
            notified |= out.buffer_full;
        }
        assert!(notified, "small buffers must fill and notify");
    }

    fn net_arm(
        wall_us: u64,
        point: NetPoint,
        flow: FlowKey,
        size: u32,
        pid: Option<Pid>,
        arm: u64,
    ) -> Event {
        ev(
            wall_us,
            EventPayload::Net {
                point,
                flow,
                packet: PacketId(wall_us),
                size,
                pid,
                arm: Some(arm),
            },
        )
    }

    fn arm_lpa() -> Lpa {
        let cfg = LpaConfig {
            use_arm_hints: true,
            ..Default::default()
        };
        Lpa::new(NodeId(1), ME, cfg)
    }

    #[test]
    fn arm_hints_separate_interleaved_requests() {
        // The exact scenario the black-box tracker collapses (see
        // interleaved_requests_collapse_into_one_message): two pipelined
        // requests on one flow. With ARM correlators they separate.
        let mut l = arm_lpa();
        let rf = req_flow();
        let tf = rf.reversed();
        let pid = Some(Pid(1));
        l.on_event(&net_arm(1_000, NetPoint::RxNic, rf, 500, None, 11)); // req A
        l.on_event(&net_arm(1_050, NetPoint::RxNic, rf, 500, None, 22)); // req B (interleaved)
        l.on_event(&net_arm(1_100, NetPoint::RxDeliverUser, rf, 500, pid, 11));
        l.on_event(&net_arm(1_150, NetPoint::RxDeliverUser, rf, 500, pid, 22));
        l.on_event(&net_arm(2_000, NetPoint::TxFromUser, tf, 100, pid, 11)); // resp A
        l.on_event(&net_arm(2_400, NetPoint::TxFromUser, tf, 100, pid, 22)); // resp B
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(
            l.records_completed(),
            2,
            "ARM hints split the interleaved exchanges into two interactions"
        );
        let recs: Vec<_> = l.window_snapshot().collect();
        assert_eq!(recs[0].req_packets, 1);
        assert_eq!(recs[1].req_packets, 1);
        // Each interaction got its own timing, not a merged span.
        assert_eq!(recs[0].start_us, 1_000);
        assert_eq!(recs[1].start_us, 1_050);
    }

    #[test]
    fn arm_completion_triggers_on_next_correlator() {
        let mut l = arm_lpa();
        let rf = req_flow();
        let tf = rf.reversed();
        // Full exchange for id 1…
        l.on_event(&net_arm(1_000, NetPoint::RxNic, rf, 500, None, 1));
        l.on_event(&net_arm(
            2_000,
            NetPoint::TxFromUser,
            tf,
            100,
            Some(Pid(1)),
            1,
        ));
        assert_eq!(l.records_completed(), 0, "still open");
        // …a packet of id 2 finishes it eagerly (no idle flush needed).
        l.on_event(&net_arm(3_000, NetPoint::RxNic, rf, 500, None, 2));
        assert_eq!(l.records_completed(), 1);
    }

    #[test]
    fn arm_kernel_and_user_attribution() {
        let mut l = arm_lpa();
        let rf = req_flow();
        let tf = rf.reversed();
        let pid = Pid(5);
        l.on_event(&net_arm(1_000, NetPoint::RxNic, rf, 500, None, 9));
        l.on_event(&net_arm(
            1_400,
            NetPoint::RxDeliverUser,
            rf,
            500,
            Some(pid),
            9,
        ));
        l.on_event(&ev(
            1_500,
            EventPayload::ContextSwitch {
                from: None,
                to: Some(pid),
            },
        ));
        l.on_event(&ev(
            1_700,
            EventPayload::ContextSwitch {
                from: Some(pid),
                to: None,
            },
        ));
        l.on_event(&net_arm(1_800, NetPoint::TxFromUser, tf, 100, Some(pid), 9));
        l.on_event(&net_arm(1_820, NetPoint::TxNicDone, tf, 100, None, 9));
        l.flush_idle(SimTime::from_secs(1));
        let rec = l.window_snapshot().next().unwrap();
        assert_eq!(rec.kernel_in_us, 400, "rx -> deliver");
        assert_eq!(rec.user_us, 200, "pid ran 200us inside the window");
        assert_eq!(rec.kernel_out_us, 20);
    }

    #[test]
    fn arm_request_without_response_is_evicted_silently() {
        let mut l = arm_lpa();
        l.on_event(&net_arm(1_000, NetPoint::RxNic, req_flow(), 500, None, 7));
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(l.records_completed(), 0);
        // The state is gone: a later response for the same id cannot pair.
        l.on_event(&net_arm(
            2_000_000,
            NetPoint::TxFromUser,
            req_flow().reversed(),
            100,
            Some(Pid(1)),
            7,
        ));
        l.flush_idle(SimTime::from_secs(10));
        assert_eq!(l.records_completed(), 0, "orphan response never pairs");
    }

    #[test]
    fn untagged_flows_fall_back_to_blackbox_pairing() {
        let mut l = arm_lpa();
        // No arm on these events even though hints are enabled.
        one_exchange(&mut l, 1_000);
        l.on_event(&net(50_000, NetPoint::RxNic, req_flow(), 1, None));
        assert_eq!(l.records_completed(), 1, "black-box path still works");
    }

    #[test]
    fn reconfigure_preserves_staged_records() {
        let mut l = lpa();
        one_exchange(&mut l, 1_000);
        l.flush_idle(SimTime::from_secs(1));
        assert_eq!(l.records_completed(), 1);
        let mut cfg = l.config().clone();
        cfg.window = 16;
        l.reconfigure(cfg);
        assert_eq!(l.drain().len(), 1, "record survives reconfiguration");
    }
}

#[cfg(test)]
#[allow(unused)] // a typecheck-only proptest elides macro bodies, orphaning these helpers
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use simnet::{EndPoint, PacketId};

    const ME: Ip = Ip(0x0A000002);

    /// Generates an arbitrary (but plausible) kernel event.
    fn arb_event() -> impl Strategy<Value = Event> {
        let ep = |ip: u32, port: u16| EndPoint::new(Ip(ip), Port(port));
        (
            0u64..2_000_000,           // wall µs
            0u8..10,                   // payload selector
            1u32..4,                   // pid
            0u32..3,                   // peer ip selector
            prop::option::of(0u64..4), // arm id
            64u32..1500,               // size
        )
            .prop_map(move |(wall, sel, pid, peer, arm, size)| {
                let pid = Pid(pid);
                let inbound = FlowKey::new(ep(peer + 1, 40_000), ep(0x0A00_0002, 2049));
                let outbound = inbound.reversed();
                let payload = match sel {
                    0 => EventPayload::Net {
                        point: NetPoint::RxNic,
                        flow: inbound,
                        packet: PacketId(wall),
                        size,
                        pid: None,
                        arm,
                    },
                    1 => EventPayload::Net {
                        point: NetPoint::RxSocketBuffer,
                        flow: inbound,
                        packet: PacketId(wall),
                        size,
                        pid: Some(pid),
                        arm,
                    },
                    2 => EventPayload::Net {
                        point: NetPoint::RxDeliverUser,
                        flow: inbound,
                        packet: PacketId(wall),
                        size,
                        pid: Some(pid),
                        arm,
                    },
                    3 => EventPayload::Net {
                        point: NetPoint::TxFromUser,
                        flow: outbound,
                        packet: PacketId(wall),
                        size,
                        pid: Some(pid),
                        arm,
                    },
                    4 => EventPayload::Net {
                        point: NetPoint::TxNicDone,
                        flow: outbound,
                        packet: PacketId(wall),
                        size,
                        pid: None,
                        arm,
                    },
                    5 => EventPayload::ContextSwitch {
                        from: None,
                        to: Some(pid),
                    },
                    6 => EventPayload::ContextSwitch {
                        from: Some(pid),
                        to: None,
                    },
                    7 => EventPayload::ProcessBlock {
                        pid,
                        reason: BlockReason::DiskIo,
                    },
                    8 => EventPayload::ProcessWake { pid },
                    _ => EventPayload::Net {
                        point: NetPoint::Drop,
                        flow: inbound,
                        packet: PacketId(wall),
                        size,
                        pid: None,
                        arm,
                    },
                };
                Event {
                    seq: wall,
                    node: NodeId(1),
                    cpu: 0,
                    wall: SimTime::from_micros(wall),
                    payload,
                }
            })
    }

    proptest! {
        /// The LPA is total: any event sequence (in any order, including
        /// time going backwards between flows) processes without panics,
        /// and every produced record satisfies basic invariants.
        #[test]
        fn prop_lpa_total_and_records_sane(
            mut events in proptest::collection::vec(arb_event(), 0..300),
            use_arm in any::<bool>(),
        ) {
            // Deliver in wall order (the kernel emits in order).
            events.sort_by_key(|e| e.wall);
            let cfg = LpaConfig {
                use_arm_hints: use_arm,
                ..LpaConfig::default()
            };
            let mut lpa = Lpa::new(NodeId(1), ME, cfg);
            for (i, ev) in events.iter().enumerate() {
                let out = lpa.on_event(ev);
                prop_assert!(out.cost > SimDuration::ZERO);
                // Occasionally flush mid-stream, as the daemon would.
                if i % 37 == 36 {
                    lpa.flush_idle(ev.wall + SimDuration::from_secs(1));
                    lpa.drain();
                }
            }
            lpa.flush_idle(SimTime::from_secs(10));
            for rec in lpa.drain() {
                prop_assert!(rec.end_us >= rec.start_us, "span sane");
                prop_assert!(rec.req_packets >= 1);
                prop_assert!(rec.resp_packets >= 1);
                prop_assert!(
                    rec.kernel_in_us <= rec.end_us - rec.start_us + 1,
                    "kernel-in {} inside span {}",
                    rec.kernel_in_us,
                    rec.end_us - rec.start_us
                );
                prop_assert_eq!(rec.node, NodeId(1));
            }
        }
    }
}
