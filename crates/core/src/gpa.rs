//! The Global Performance Analyzer.
//!
//! "The Global Performance Analyzer aggregates and correlates the data it
//! receives from different SysProf daemons. Specifically, it correlates
//! the source and destination IP addresses, port information, and NTP
//! timestamps in the logs from different nodes. After aggregating the
//! resource usage of each individual interaction, GPA computes the
//! overall performance of the associated request-response pair. Other
//! nodes in the system can query the GPA … The GPA periodically dumps its
//! information onto local disk." (§2)

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use pubsub::control::ControlMsg;
use pubsub::digest::{DigestStats, ShardedDigest};
use pubsub::reliable::{decode_batch, Offer, Reassembler};
use pubsub::{ChannelDecoder, PubSubError};
use serde::{Deserialize, Serialize};
use simcore::stats::OnlineStats;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{EndPoint, Port};
use simos::{KernelOutput, KernelSend, KernelSink, Message};

use crate::daemon::{split_frames, CONTROL_PORT};
use crate::records::{InteractionRecord, LoadRecord};

/// GPA configuration.
#[derive(Debug, Clone, Copy)]
pub struct GpaConfig {
    /// Worst-case cross-node clock error the correlator must absorb
    /// (choose ≥ the deployed `ClockSpec` bound; the paper's testbed is
    /// NTP-disciplined).
    pub clock_error_bound: SimDuration,
    /// CPU cost per ingested record (charged on the GPA node).
    pub per_record_cost: SimDuration,
    /// Cap on retained interaction records (oldest evicted first).
    pub max_records: usize,
    /// How many NACKs to send for one gap before abandoning it (the
    /// sender has evicted the range, or the path is dead). Abandoned
    /// gaps are counted in [`GpaStats::gaps_abandoned`], never silent.
    pub gap_nack_limit: u32,
    /// Minimum wall-clock spacing between NACKs for the same gap. A
    /// retransmit burst after a partition heals can deliver many batches
    /// within microseconds; without pacing each one would burn a NACK
    /// from the gap budget before the first NACK's retransmit has had a
    /// round trip's chance to arrive. Must comfortably exceed the
    /// network RTT.
    pub nack_pace: SimDuration,
    /// Record every in-order batch delivery `(source, seq)` for
    /// test-harness monotonicity assertions. Off by default (unbounded
    /// memory growth).
    pub log_deliveries: bool,
}

impl Default for GpaConfig {
    fn default() -> Self {
        GpaConfig {
            clock_error_bound: SimDuration::from_millis(1),
            per_record_cost: SimDuration::from_nanos(600),
            max_records: 1_000_000,
            gap_nack_limit: 5,
            nack_pace: SimDuration::from_millis(5),
            log_deliveries: false,
        }
    }
}

/// Reliable-delivery counters on the GPA's receive side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpaStats {
    /// Sequenced batches received (before dedup/reordering).
    pub batches_received: u64,
    /// Batches discarded as already-delivered duplicates.
    pub duplicate_batches: u64,
    /// Batches that arrived ahead of a gap and were buffered.
    pub out_of_order: u64,
    /// Distinct gaps observed (a missing sequence range opened).
    pub gaps_detected: u64,
    /// Gaps closed by a retransmission arriving.
    pub gaps_recovered: u64,
    /// Gaps given up on after [`GpaConfig::gap_nack_limit`] unanswered
    /// NACKs; the stream skipped past them.
    pub gaps_abandoned: u64,
    /// Data NACKs sent back to daemons.
    pub nacks_sent: u64,
    /// Cumulative data ACKs sent back to daemons.
    pub acks_sent: u64,
    /// Batches that carried no sequence header (legacy/foreign senders);
    /// ingested directly with no reliability guarantees.
    pub unsequenced_batches: u64,
}

/// Receive-side state of one daemon→GPA stream.
#[derive(Default)]
struct StreamRx {
    reasm: Reassembler,
    /// Whether a gap is currently open (for detected/recovered edges).
    gap_open: bool,
    /// NACKs sent for the currently open gap.
    nacks_for_gap: u32,
    /// When the last NACK for the open gap went out, for pacing.
    last_nack_at: Option<SimTime>,
}

/// Aggregate view of one service class on one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassSummary {
    /// Measuring node.
    pub node: NodeId,
    /// Responder-side port.
    pub class_port: Port,
    /// Interactions observed.
    pub count: u64,
    /// Mean inbound kernel time, µs.
    pub mean_kernel_in_us: f64,
    /// Mean user time, µs.
    pub mean_user_us: f64,
    /// Mean outbound kernel time, µs.
    pub mean_kernel_out_us: f64,
    /// Mean blocked time, µs.
    pub mean_blocked_us: f64,
    /// Mean total latency, µs.
    pub mean_total_us: f64,
    /// Median total latency, µs (log-scale histogram estimate).
    pub p50_total_us: f64,
    /// 95th-percentile total latency, µs.
    pub p95_total_us: f64,
    /// 99th-percentile total latency, µs.
    pub p99_total_us: f64,
}

/// Latest load information about one node, with history statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeLoadView {
    /// The most recent report.
    pub latest: LoadRecord,
    /// Mean CPU utilization across all reports.
    pub mean_utilization: f64,
    /// Number of reports received.
    pub reports: u64,
}

/// A cross-node correlated request path: a parent interaction (e.g.
/// client→proxy, measured at the proxy) with the child interactions
/// (e.g. proxy→server, measured at the server) nested within its time
/// span.
#[derive(Debug, Clone, Serialize)]
pub struct CorrelatedPath {
    /// The enclosing interaction.
    pub parent: InteractionRecord,
    /// Interactions nested inside the parent's span whose initiator is
    /// the parent's responder.
    pub children: Vec<InteractionRecord>,
}

impl CorrelatedPath {
    /// Total child latency, µs (time the parent spent waiting on
    /// downstream services, as measured at those services).
    pub fn downstream_us(&self) -> u64 {
        self.children
            .iter()
            .map(|c| c.end_us.saturating_sub(c.start_us))
            .sum()
    }
}

#[derive(Default)]
struct ClassAggr {
    kernel_in: OnlineStats,
    user: OnlineStats,
    kernel_out: OnlineStats,
    blocked: OnlineStats,
    total: OnlineStats,
    total_hist: simcore::stats::Histogram,
}

/// A subscribe request a remote daemon rejected (received as a NACK).
///
/// Surfaced by [`Gpa::subscription_failures`] so operators see *why* a
/// node is silent instead of debugging missing data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionFailure {
    /// Topic of the rejected subscribe.
    pub topic: String,
    /// The subscriber endpoint the rejected request named.
    pub subscriber: EndPoint,
    /// The daemon that rejected it.
    pub from: EndPoint,
    /// Rendered verifier diagnostics (one string per finding).
    pub diagnostics: Vec<String>,
}

/// The global analyzer state. Wrap in `Rc<RefCell<…>>` and hand a clone
/// to [`GpaSink`]; keep a clone for queries.
pub struct Gpa {
    config: GpaConfig,
    records: Vec<InteractionRecord>,
    by_class: HashMap<(NodeId, Port), ClassAggr>,
    latest_load: HashMap<NodeId, LoadRecord>,
    load_stats: HashMap<NodeId, (OnlineStats, u64)>,
    load_history: Vec<LoadRecord>,
    decoders: HashMap<EndPoint, ChannelDecoder>,
    streams: HashMap<EndPoint, StreamRx>,
    gstats: GpaStats,
    delivery_log: Vec<(EndPoint, u64)>,
    ingested: u64,
    decode_failures: u64,
    subscription_failures: Vec<SubscriptionFailure>,
    /// Optional sharded digest evaluated over every ingested interaction
    /// record (the first slice of the sharded GPA).
    digest: Option<ShardedDigest>,
    /// Reusable scratch row for the digest's raw ingest path.
    digest_row: Vec<i64>,
}

/// Deterministic digest partition key for an interaction: both
/// endpoints of the flow, mixed so that src/dst asymmetry matters. The
/// digest hashes this again (FNV-1a) for shard placement; all that is
/// required here is that the key is a pure function of the flow, so a
/// flow's records always land on the same replica. Public so benches
/// driving a `ShardedDigest` directly dispatch records exactly as the
/// GPA would.
pub fn flow_shard_key(rec: &InteractionRecord) -> u64 {
    let ep = |e: &EndPoint| ((e.ip.0 as u64) << 16) | e.port.0 as u64;
    ep(&rec.flow.src).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ep(&rec.flow.dst)
}

impl Gpa {
    /// An empty GPA.
    pub fn new(config: GpaConfig) -> Self {
        Gpa {
            config,
            records: Vec::new(),
            by_class: HashMap::new(),
            latest_load: HashMap::new(),
            load_stats: HashMap::new(),
            load_history: Vec::new(),
            decoders: HashMap::new(),
            streams: HashMap::new(),
            gstats: GpaStats::default(),
            delivery_log: Vec::new(),
            ingested: 0,
            decode_failures: 0,
            subscription_failures: Vec::new(),
            digest: None,
            digest_row: Vec::new(),
        }
    }

    /// Installs a digest program evaluated over every ingested
    /// interaction record, partitioned across `shards` replica instances
    /// by flow key. The program sees the interaction schema's fields as
    /// E-Code inputs; if the verifier cannot prove its statics
    /// shard-safe, evaluation silently falls back to a single instance
    /// (check [`Gpa::digest_stats`]).
    pub fn install_digest(&mut self, src: &str, shards: usize) -> Result<(), PubSubError> {
        self.digest = Some(ShardedDigest::compile(
            src,
            &InteractionRecord::schema(),
            shards,
        )?);
        Ok(())
    }

    /// The installed digest, if any.
    pub fn digest(&self) -> Option<&ShardedDigest> {
        self.digest.as_ref()
    }

    /// Reads a static of the installed digest's *merged* state by name.
    pub fn digest_global(&self, name: &str) -> Option<ecode::Value> {
        self.digest.as_ref()?.merged_global(name)
    }

    /// Evaluation statistics of the installed digest.
    pub fn digest_stats(&self) -> Option<DigestStats> {
        self.digest.as_ref().map(|d| d.stats())
    }

    /// Feeds one interaction record directly (bypassing the wire path);
    /// used by tests and benches that already hold decoded records.
    /// Skips PBIO `Value` marshalling entirely: the digest sees the
    /// record as a raw column row.
    pub fn ingest_record(&mut self, rec: &InteractionRecord) {
        self.ingest_interaction(*rec);
    }

    /// Feeds a batch of interaction records and then flushes any
    /// partially-filled digest batches to their shard workers, so the
    /// batch boundary the caller sees (one daemon delivery, one bench
    /// chunk) is also a digest pipeline boundary.
    pub fn ingest_records<'a, I>(&mut self, recs: I)
    where
        I: IntoIterator<Item = &'a InteractionRecord>,
    {
        for rec in recs {
            self.ingest_interaction(*rec);
        }
        if let Some(digest) = self.digest.as_mut() {
            digest.flush();
        }
    }

    /// Runs one wire batch from a daemon through the reliability layer:
    /// decodes the sequence header, delivers in-order batches exactly
    /// once, and produces the control replies (cumulative ACK, plus a
    /// gap NACK when a hole is visible) to send back to the daemon's
    /// control port. `self_ep` is this GPA's data endpoint, named in
    /// replies so the daemon knows which subscription stream they govern.
    ///
    /// Unsequenced input (no valid header) is ingested directly and
    /// produces no replies.
    ///
    /// Returns `(records_decoded, replies)`.
    pub fn ingest_wire(
        &mut self,
        now_wall: SimTime,
        self_ep: EndPoint,
        src: EndPoint,
        data: &[u8],
    ) -> (usize, Vec<ControlMsg>) {
        let Some((seq, payload)) = decode_batch(data) else {
            self.gstats.unsequenced_batches += 1;
            return (self.ingest_batch(src, data), Vec::new());
        };
        self.gstats.batches_received += 1;
        let offer = self
            .streams
            .entry(src)
            .or_default()
            .reasm
            .offer(seq, payload.to_vec());
        let mut count = 0;
        match offer {
            Offer::Delivered(batches) => {
                for (dseq, p) in batches {
                    if self.config.log_deliveries {
                        self.delivery_log.push((src, dseq));
                    }
                    count += self.ingest_batch(src, &p);
                }
            }
            Offer::Duplicate => self.gstats.duplicate_batches += 1,
            Offer::Buffered => self.gstats.out_of_order += 1,
        }

        // Gap bookkeeping: NACK an open hole, or abandon it once the
        // NACK budget is spent (the sender evicted the range).
        let mut replies = Vec::new();
        enum GapAction {
            None,
            Nack(u64, u64),
            Abandon(u64),
        }
        let action = {
            let st = self.streams.get_mut(&src).expect("stream just touched");
            match st.reasm.gap() {
                Some((from, to)) => {
                    if !st.gap_open {
                        st.gap_open = true;
                        st.nacks_for_gap = 0;
                        st.last_nack_at = None;
                        self.gstats.gaps_detected += 1;
                    }
                    let paced_out = st
                        .last_nack_at
                        .is_some_and(|t| now_wall < t + self.config.nack_pace);
                    if paced_out {
                        // An outstanding NACK's retransmit may still be in
                        // flight; don't burn budget on burst arrivals.
                        GapAction::None
                    } else if st.nacks_for_gap < self.config.gap_nack_limit {
                        st.nacks_for_gap += 1;
                        st.last_nack_at = Some(now_wall);
                        GapAction::Nack(from, to)
                    } else {
                        GapAction::Abandon(to + 1)
                    }
                }
                None => {
                    if st.gap_open {
                        st.gap_open = false;
                        st.last_nack_at = None;
                        self.gstats.gaps_recovered += 1;
                    }
                    GapAction::None
                }
            }
        };
        match action {
            GapAction::None => {}
            GapAction::Nack(from, to) => {
                self.gstats.nacks_sent += 1;
                replies.push(ControlMsg::DataNack {
                    subscriber: self_ep,
                    from_seq: from,
                    to_seq: to,
                });
            }
            GapAction::Abandon(skip_to) => {
                let st = self.streams.get_mut(&src).expect("stream just touched");
                let drained = st.reasm.skip_to(skip_to);
                st.gap_open = false;
                st.last_nack_at = None;
                self.gstats.gaps_abandoned += 1;
                for (dseq, p) in drained {
                    if self.config.log_deliveries {
                        self.delivery_log.push((src, dseq));
                    }
                    count += self.ingest_batch(src, &p);
                }
            }
        }

        // Cumulative ACK on every sequenced batch (duplicates included —
        // a re-ACK is how a daemon retransmitting into an already-healed
        // stream learns to stop).
        self.gstats.acks_sent += 1;
        replies.push(ControlMsg::DataAck {
            subscriber: self_ep,
            upto: self.streams[&src].reasm.ack_value(),
        });
        (count, replies)
    }

    /// Reliable-delivery counters.
    pub fn gpa_stats(&self) -> GpaStats {
        self.gstats
    }

    /// Whether every stream has fully converged: no open gaps and no
    /// out-of-order batches still buffered. True once retransmissions
    /// (or abandonments) have caught the GPA up after a fault episode.
    pub fn streams_converged(&self) -> bool {
        self.streams
            .values()
            .all(|st| st.reasm.gap().is_none() && st.reasm.pending_len() == 0)
    }

    /// In-order `(source, seq)` deliveries, when
    /// [`GpaConfig::log_deliveries`] is set.
    pub fn delivery_log(&self) -> &[(EndPoint, u64)] {
        &self.delivery_log
    }

    /// Ingests one framed batch from a daemon. Returns records decoded.
    pub fn ingest_batch(&mut self, src: EndPoint, data: &[u8]) -> usize {
        let mut count = 0;
        // Frame split first so the decoder borrow stays local.
        let frames: Vec<Vec<u8>> = split_frames(data).into_iter().map(|f| f.to_vec()).collect();
        for frame in frames {
            let decoder = self.decoders.entry(src).or_default();
            match decoder.decode(&frame) {
                Ok(Some((_topic, values))) => {
                    count += 1;
                    self.ingest_values(&values);
                }
                Ok(None) => {}
                Err(_) => self.decode_failures += 1,
            }
        }
        // One daemon delivery is one digest pipeline boundary: ship any
        // partial per-shard batches so records never linger in builders
        // while the GPA waits for the next wire batch.
        if count > 0 {
            if let Some(digest) = self.digest.as_mut() {
                digest.flush();
            }
        }
        count
    }

    fn ingest_values(&mut self, values: &[pbio::Value]) {
        if let Some(rec) = InteractionRecord::from_values(values) {
            self.ingest_interaction(rec);
        } else if let Some(load) = LoadRecord::from_values(values) {
            self.ingested += 1;
            let (stats, n) = self.load_stats.entry(load.node).or_default();
            stats.record(load.cpu_utilization);
            *n += 1;
            self.latest_load.insert(load.node, load);
            self.load_history.push(load);
        } else {
            self.decode_failures += 1;
        }
    }

    /// The single interaction ingest path behind both the wire decoder
    /// and the direct record entry points.
    fn ingest_interaction(&mut self, rec: InteractionRecord) {
        self.ingested += 1;
        if let Some(digest) = self.digest.as_mut() {
            rec.to_raw_row(&mut self.digest_row);
            digest.ingest_raw(flow_shard_key(&rec), &self.digest_row);
        }
        let aggr = self.by_class.entry((rec.node, rec.class_port)).or_default();
        aggr.kernel_in.record(rec.kernel_in_us as f64);
        aggr.user.record(rec.user_us as f64);
        aggr.kernel_out.record(rec.kernel_out_us as f64);
        aggr.blocked.record(rec.blocked_us as f64);
        aggr.total
            .record(rec.end_us.saturating_sub(rec.start_us) as f64);
        aggr.total_hist
            .record(rec.end_us.saturating_sub(rec.start_us) as f64);
        if self.records.len() >= self.config.max_records {
            self.records.remove(0);
        }
        self.records.push(rec);
    }

    /// Interaction records ingested so far.
    pub fn interaction_count(&self) -> u64 {
        self.records.len() as u64
    }

    /// Records that failed to decode or match a known schema.
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures
    }

    /// Subscribe requests remote daemons rejected (NACKs received), with
    /// the verifier diagnostics explaining each rejection.
    pub fn subscription_failures(&self) -> &[SubscriptionFailure] {
        &self.subscription_failures
    }

    /// Records a NACK received from a daemon (called by
    /// [`ControlReplySink`]).
    pub fn record_subscription_failure(&mut self, failure: SubscriptionFailure) {
        self.subscription_failures.push(failure);
    }

    /// All retained interaction records (ingest order).
    pub fn interactions(&self) -> &[InteractionRecord] {
        &self.records
    }

    /// Interactions measured on `node` for `class_port`.
    pub fn interactions_of(&self, node: NodeId, class_port: Port) -> Vec<&InteractionRecord> {
        self.records
            .iter()
            .filter(|r| r.node == node && r.class_port == class_port)
            .collect()
    }

    /// Aggregate summary for one (node, class) pair, if any interactions
    /// were seen.
    pub fn class_summary(&self, node: NodeId, class_port: Port) -> Option<ClassSummary> {
        let aggr = self.by_class.get(&(node, class_port))?;
        Some(ClassSummary {
            node,
            class_port,
            count: aggr.total.count(),
            mean_kernel_in_us: aggr.kernel_in.mean(),
            mean_user_us: aggr.user.mean(),
            mean_kernel_out_us: aggr.kernel_out.mean(),
            mean_blocked_us: aggr.blocked.mean(),
            mean_total_us: aggr.total.mean(),
            p50_total_us: aggr.total_hist.percentile(50.0).unwrap_or(0.0),
            p95_total_us: aggr.total_hist.percentile(95.0).unwrap_or(0.0),
            p99_total_us: aggr.total_hist.percentile(99.0).unwrap_or(0.0),
        })
    }

    /// Every (node, class) summary, sorted.
    pub fn all_class_summaries(&self) -> Vec<ClassSummary> {
        let mut keys: Vec<_> = self.by_class.keys().copied().collect();
        keys.sort();
        keys.into_iter()
            .filter_map(|(n, p)| self.class_summary(n, p))
            .collect()
    }

    /// The load view for one node.
    pub fn node_load(&self, node: NodeId) -> Option<NodeLoadView> {
        let latest = *self.latest_load.get(&node)?;
        let (stats, n) = self.load_stats.get(&node)?;
        Some(NodeLoadView {
            latest,
            mean_utilization: stats.mean(),
            reports: *n,
        })
    }

    /// All load reports received, in arrival order.
    pub fn load_history(&self) -> &[LoadRecord] {
        &self.load_history
    }

    /// Nodes whose load reports have gone silent: their last report is
    /// older than `timeout` as of `now_wall` (GPA-node wall clock). The
    /// heartbeat-style failure detector the §3.2 motivation asks for —
    /// a crashed or partitioned server stops publishing.
    pub fn silent_nodes(&self, now_wall: SimTime, timeout: SimDuration) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .latest_load
            .iter()
            .filter(|(_, load)| now_wall.saturating_since(load.wall()) > timeout)
            .map(|(n, _)| *n)
            .collect();
        out.sort();
        out
    }

    /// Correlates interactions across nodes into end-to-end paths: a
    /// child belongs to a parent when the child's initiator IP equals the
    /// parent's responder IP, both carry the same conversation direction,
    /// and the child's span nests inside the parent's span widened by the
    /// configured clock-error bound.
    ///
    /// Only parents measured responder-side (non-zero attribution) on a
    /// different node than the child are considered.
    pub fn correlate(&self) -> Vec<CorrelatedPath> {
        let eps = self.config.clock_error_bound.as_micros();
        let mut paths = Vec::new();
        for parent in &self.records {
            let mut children = Vec::new();
            for child in &self.records {
                if child.node == parent.node {
                    continue;
                }
                // Child request initiated by the parent's responder host.
                if child.flow.src.ip != parent.flow.dst.ip {
                    continue;
                }
                let nests =
                    child.start_us + eps >= parent.start_us && child.end_us <= parent.end_us + eps;
                if nests {
                    children.push(*child);
                }
            }
            if !children.is_empty() {
                paths.push(CorrelatedPath {
                    parent: *parent,
                    children,
                });
            }
        }
        paths
    }

    /// Serializes the GPA's state summary as JSON — the periodic "dump …
    /// onto local disk" used for auditing and capacity planning.
    pub fn dump_json(&self) -> String {
        #[derive(Serialize)]
        #[allow(dead_code)] // fields are read only through the Serialize derive
        struct Dump<'a> {
            interaction_count: u64,
            class_summaries: Vec<ClassSummary>,
            load_history: &'a [LoadRecord],
        }
        serde_json::to_string_pretty(&Dump {
            interaction_count: self.interaction_count(),
            class_summaries: self.all_class_summaries(),
            load_history: &self.load_history,
        })
        .expect("dump serializes")
    }
}

/// The kernel sink that feeds a shared [`Gpa`] from daemon publications,
/// running every batch through the reliability layer and answering with
/// ACK/NACK control messages to the publishing daemon.
pub struct GpaSink {
    gpa: Rc<RefCell<Gpa>>,
    /// This sink's own data endpoint, named in ACK/NACK replies so the
    /// daemon knows which subscription stream they govern.
    self_ep: EndPoint,
}

impl GpaSink {
    /// A sink feeding `gpa`, listening at `self_ep`.
    pub fn new(gpa: Rc<RefCell<Gpa>>, self_ep: EndPoint) -> Self {
        GpaSink { gpa, self_ep }
    }
}

impl KernelSink for GpaSink {
    fn on_message(
        &mut self,
        now_wall: SimTime,
        _node: NodeId,
        src: EndPoint,
        _msg: Message,
        data: simos::Bytes,
    ) -> KernelOutput {
        let (n, replies) = {
            let mut gpa = self.gpa.borrow_mut();
            gpa.ingest_wire(now_wall, self.self_ep, src, &data)
        };
        let cost = self.gpa.borrow().config.per_record_cost * (n as u64 + 1)
            + SimDuration::from_micros(replies.len() as u64);
        let sends = replies
            .into_iter()
            .map(|msg| KernelSend {
                dst: EndPoint::new(src.ip, CONTROL_PORT),
                src_port: self.self_ep.port,
                kind: 0,
                data: msg.encode().into(),
            })
            .collect();
        KernelOutput {
            cost,
            sends,
            ..Default::default()
        }
    }
}

/// Receives control-plane replies (subscribe NACKs) from remote daemons
/// and records them on the shared [`Gpa`].
///
/// Installed on the GPA node at the port its subscribe requests name as
/// their source, so daemon replies route back here.
pub struct ControlReplySink {
    gpa: Rc<RefCell<Gpa>>,
}

impl ControlReplySink {
    /// A sink recording NACKs onto `gpa`.
    pub fn new(gpa: Rc<RefCell<Gpa>>) -> Self {
        ControlReplySink { gpa }
    }
}

impl KernelSink for ControlReplySink {
    fn on_message(
        &mut self,
        _now_wall: SimTime,
        _node: NodeId,
        src: EndPoint,
        _msg: Message,
        data: simos::Bytes,
    ) -> KernelOutput {
        if let Ok(pubsub::control::ControlMsg::SubscribeNack {
            topic,
            reply_to,
            diagnostics,
        }) = pubsub::control::ControlMsg::decode(&data)
        {
            self.gpa
                .borrow_mut()
                .record_subscription_failure(SubscriptionFailure {
                    topic,
                    subscriber: reply_to,
                    from: src,
                    diagnostics,
                });
        }
        KernelOutput {
            cost: SimDuration::from_micros(1),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{FlowKey, Ip};

    fn rec(
        node: u32,
        src_ip: u32,
        dst_ip: u32,
        class: u16,
        start: u64,
        end: u64,
    ) -> InteractionRecord {
        InteractionRecord {
            node: NodeId(node),
            flow: FlowKey::new(
                EndPoint::new(Ip(src_ip), Port(40000)),
                EndPoint::new(Ip(dst_ip), Port(class)),
            ),
            class_port: Port(class),
            pid: 1,
            start_us: start,
            end_us: end,
            req_packets: 1,
            req_bytes: 100,
            resp_packets: 1,
            resp_bytes: 100,
            kernel_in_us: 10,
            user_us: 5,
            kernel_out_us: 3,
            blocked_us: 0,
            blocked_io_us: 0,
        }
    }

    fn gpa_with(records: Vec<InteractionRecord>) -> Gpa {
        let mut g = Gpa::new(GpaConfig::default());
        for r in records {
            g.ingest_values(&r.to_values());
        }
        g
    }

    #[test]
    fn installed_digest_folds_shards_to_the_sequential_answer() {
        let src = "
            static int seen = 0;
            static int bytes = 0;
            static int worst_us = 0;
            seen = seen + 1;
            bytes = bytes + req_bytes + resp_bytes;
            worst_us = max(worst_us, end_us - start_us);
            return 0;
        ";
        let mut sharded = Gpa::new(GpaConfig::default());
        sharded.install_digest(src, 8).unwrap();
        let mut sequential = Gpa::new(GpaConfig::default());
        sequential.install_digest(src, 1).unwrap();
        for i in 0..200u64 {
            // 16 distinct flows spread across the shards.
            let r = rec(1, 10 + (i % 16) as u32, 20, 80, i * 10, i * 10 + 7 + i % 13);
            sharded.ingest_record(&r);
            sequential.ingest_record(&r);
        }
        let stats = sharded.digest_stats().unwrap();
        assert!(stats.sharded, "{stats:?}");
        assert_eq!(stats.events, 200);
        assert!(
            stats.per_shard_events.iter().filter(|&&n| n > 0).count() > 1,
            "partitioning actually spread the flows: {stats:?}"
        );
        assert_eq!(sharded.digest_global("seen"), Some(ecode::Value::Int(200)));
        for name in ["seen", "bytes", "worst_us"] {
            assert_eq!(
                sharded.digest_global(name),
                sequential.digest_global(name),
                "{name} must fold to the sequential value"
            );
        }
    }

    #[test]
    fn class_summaries_aggregate() {
        let g = gpa_with(vec![
            rec(1, 10, 20, 80, 0, 100),
            rec(1, 10, 20, 80, 200, 400),
        ]);
        let s = g.class_summary(NodeId(1), Port(80)).unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean_total_us - 150.0).abs() < 1e-9);
        assert!(g.class_summary(NodeId(2), Port(80)).is_none());
    }

    #[test]
    fn correlation_nests_by_ip_and_time() {
        // Parent: client(10)→proxy(20), measured at proxy (node 1),
        // span [1000, 9000].
        // Child: proxy(20)→server(30), measured at server (node 2),
        // span [2000, 8000] — nests, initiator ip matches.
        let parent = rec(1, 10, 20, 2049, 1_000, 9_000);
        let child = rec(2, 20, 30, 2049, 2_000, 8_000);
        let stranger = rec(2, 99, 30, 2049, 2_000, 8_000); // wrong initiator
        let late = rec(2, 20, 30, 2049, 2_000, 20_000); // doesn't nest
        let g = gpa_with(vec![parent, child, stranger, late]);
        let paths = g.correlate();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].parent, parent);
        assert_eq!(paths[0].children, vec![child]);
        assert_eq!(paths[0].downstream_us(), 6_000);
    }

    #[test]
    fn correlation_absorbs_clock_error() {
        // Child starts 500 µs "before" the parent by its skewed clock;
        // the 1 ms default bound forgives it.
        let parent = rec(1, 10, 20, 80, 1_000, 9_000);
        let child = rec(2, 20, 30, 80, 600, 8_900);
        let g = gpa_with(vec![parent, child]);
        assert_eq!(g.correlate().len(), 1);

        // Beyond the bound, correlation refuses.
        let parent = rec(1, 10, 20, 80, 10_000, 19_000);
        let child = rec(2, 20, 30, 80, 8_000, 18_000);
        let mut g2 = Gpa::new(GpaConfig::default());
        for r in [parent, child] {
            g2.ingest_values(&r.to_values());
        }
        assert_eq!(g2.correlate().len(), 0);
    }

    #[test]
    fn load_views_track_latest_and_mean() {
        let mut g = Gpa::new(GpaConfig::default());
        for (i, util) in [0.2, 0.4, 0.9].iter().enumerate() {
            let load = LoadRecord {
                node: NodeId(5),
                wall_us: i as u64 * 1000,
                cpu_utilization: *util,
                mean_kernel_us: 10.0,
                interactions: 3,
                monitor_us: 1,
            };
            g.ingest_values(&load.to_values());
        }
        let view = g.node_load(NodeId(5)).unwrap();
        assert_eq!(view.reports, 3);
        assert_eq!(view.latest.cpu_utilization, 0.9);
        assert!((view.mean_utilization - 0.5).abs() < 1e-9);
        assert_eq!(g.load_history().len(), 3);
        assert!(g.node_load(NodeId(6)).is_none());
    }

    #[test]
    fn record_cap_evicts_oldest() {
        let mut g = Gpa::new(GpaConfig {
            max_records: 2,
            ..GpaConfig::default()
        });
        for i in 0..4 {
            g.ingest_values(&rec(1, 10, 20, 80, i * 100, i * 100 + 50).to_values());
        }
        assert_eq!(g.interaction_count(), 2);
        assert_eq!(g.interactions()[0].start_us, 200);
    }

    #[test]
    fn garbage_counts_as_decode_failure() {
        let mut g = Gpa::new(GpaConfig::default());
        g.ingest_values(&[pbio::Value::U64(1)]);
        assert_eq!(g.decode_failures(), 1);
        assert_eq!(g.interaction_count(), 0);
    }

    #[test]
    fn silent_nodes_flags_stale_reporters() {
        let mut g = Gpa::new(GpaConfig::default());
        for (node, at_ms) in [(1u32, 1_000u64), (2, 5_000)] {
            let load = LoadRecord {
                node: NodeId(node),
                wall_us: at_ms * 1_000,
                cpu_utilization: 0.5,
                mean_kernel_us: 1.0,
                interactions: 1,
                monitor_us: 0,
            };
            g.ingest_values(&load.to_values());
        }
        let now = SimTime::from_secs(6);
        let silent = g.silent_nodes(now, SimDuration::from_secs(3));
        assert_eq!(silent, vec![NodeId(1)], "node 1's reports are stale");
        assert!(g.silent_nodes(now, SimDuration::from_secs(10)).is_empty());
    }

    #[test]
    fn percentiles_order_and_bracket_mean() {
        let mut g = Gpa::new(GpaConfig::default());
        for i in 1..=100u64 {
            g.ingest_values(&rec(1, 10, 20, 80, 0, i * 100).to_values());
        }
        let s = g.class_summary(NodeId(1), Port(80)).unwrap();
        assert!(s.p50_total_us <= s.p95_total_us);
        assert!(s.p95_total_us <= s.p99_total_us);
        // For this uniform ramp the median sits near the mean.
        let rel = (s.p50_total_us - s.mean_total_us).abs() / s.mean_total_us;
        assert!(
            rel < 0.3,
            "p50 {} vs mean {}",
            s.p50_total_us,
            s.mean_total_us
        );
    }

    #[test]
    fn sequenced_ingest_dedups_nacks_gaps_and_acks() {
        use pubsub::reliable::encode_batch;
        let mut g = Gpa::new(GpaConfig {
            log_deliveries: true,
            ..GpaConfig::default()
        });
        let me = EndPoint::new(Ip(99), Port(9999));
        let src = EndPoint::new(Ip(1), Port(9997));
        let t = SimTime::from_millis;
        // An empty payload still counts as a delivered batch.
        let b = |seq| encode_batch(seq, &[]);

        let (_, replies) = g.ingest_wire(t(10), me, src, &b(1));
        assert_eq!(
            replies,
            vec![ControlMsg::DataAck {
                subscriber: me,
                upto: 1
            }]
        );
        // 2 lost; 3 arrives → buffered, NACK for [2,2], ACK still 1.
        let (_, replies) = g.ingest_wire(t(20), me, src, &b(3));
        assert_eq!(
            replies,
            vec![
                ControlMsg::DataNack {
                    subscriber: me,
                    from_seq: 2,
                    to_seq: 2
                },
                ControlMsg::DataAck {
                    subscriber: me,
                    upto: 1
                },
            ]
        );
        assert!(!g.streams_converged());
        // A burst arrival 1 ms later is inside the NACK pace: no budget
        // burned, just the cumulative ACK.
        let (_, replies) = g.ingest_wire(t(21), me, src, &b(4));
        assert_eq!(
            replies,
            vec![ControlMsg::DataAck {
                subscriber: me,
                upto: 1
            }],
            "paced out: no second NACK within nack_pace"
        );
        // Duplicate of 1 → counted, re-ACKed, never re-delivered; the
        // pace has elapsed, so the still-open gap is NACKed again.
        let (_, replies) = g.ingest_wire(t(30), me, src, &b(1));
        assert_eq!(replies.len(), 2, "NACK for the still-open gap + ACK");
        // Retransmit of 2 heals the gap and unblocks 3 and 4.
        let (_, replies) = g.ingest_wire(t(40), me, src, &b(2));
        assert_eq!(
            replies,
            vec![ControlMsg::DataAck {
                subscriber: me,
                upto: 4
            }]
        );
        let s = g.gpa_stats();
        assert_eq!(s.batches_received, 5);
        assert_eq!(s.duplicate_batches, 1);
        assert_eq!(s.out_of_order, 2);
        assert_eq!(s.gaps_detected, 1);
        assert_eq!(s.gaps_recovered, 1);
        assert_eq!(s.gaps_abandoned, 0);
        assert_eq!(s.nacks_sent, 2);
        assert!(g.streams_converged());
        // Delivery log is strictly monotonic per source.
        assert_eq!(
            g.delivery_log(),
            &[(src, 1), (src, 2), (src, 3), (src, 4)],
            "exactly-once, in order"
        );
    }

    #[test]
    fn unanswered_nacks_abandon_the_gap_with_counting() {
        use pubsub::reliable::encode_batch;
        let mut g = Gpa::new(GpaConfig {
            gap_nack_limit: 2,
            ..GpaConfig::default()
        });
        let me = EndPoint::new(Ip(99), Port(9999));
        let src = EndPoint::new(Ip(1), Port(9997));
        let t = SimTime::from_millis;
        g.ingest_wire(t(10), me, src, &encode_batch(1, &[]));
        // 2 is lost forever; each later (pace-spaced) arrival re-NACKs
        // until the budget runs out, then the stream skips ahead.
        for (i, seq) in [3u64, 4, 5].into_iter().enumerate() {
            g.ingest_wire(t(20 + 10 * i as u64), me, src, &encode_batch(seq, &[]));
        }
        let s = g.gpa_stats();
        assert_eq!(s.gaps_detected, 1);
        assert_eq!(s.nacks_sent, 2, "budget of 2");
        assert_eq!(s.gaps_abandoned, 1);
        assert_eq!(s.gaps_recovered, 0);
        assert!(g.streams_converged(), "stream moved past the dead gap");
        // The skip delivered the buffered 3..=5.
        let (_, replies) = g.ingest_wire(t(60), me, src, &encode_batch(6, &[]));
        assert_eq!(
            replies,
            vec![ControlMsg::DataAck {
                subscriber: me,
                upto: 6
            }]
        );
    }

    #[test]
    fn unsequenced_batches_still_ingest() {
        let mut g = Gpa::new(GpaConfig::default());
        let me = EndPoint::new(Ip(99), Port(9999));
        let src = EndPoint::new(Ip(1), Port(9997));
        let (_, replies) = g.ingest_wire(SimTime::from_millis(1), me, src, &[]);
        assert!(replies.is_empty(), "no reliability chatter for legacy data");
        assert_eq!(g.gpa_stats().unsequenced_batches, 1);
    }

    #[test]
    fn dump_json_is_valid() {
        let g = gpa_with(vec![rec(1, 10, 20, 80, 0, 100)]);
        let dump = g.dump_json();
        let parsed: serde_json::Value = serde_json::from_str(&dump).unwrap();
        assert_eq!(parsed["interaction_count"], 1);
    }
}
