//! Regression test for the zero-allocation emit hot path: after warmup,
//! pushing a million events through `Kprof::emit` — mask dispatch,
//! compiled-predicate checks, analyzer callbacks, and `EmitResult`
//! construction — must never touch the heap.
//!
//! This file is its own test binary so the counting `#[global_allocator]`
//! observes only this test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use kprof::{CountingAnalyzer, EventMask, EventPayload, FileId, Kprof, NetPoint, Pid, Predicate};
use simcore::{NodeId, SimTime};
use simnet::{EndPoint, FlowKey, Ip, PacketId, Port};

/// Counts every allocation and every (re)allocation on the test thread
/// while [`TRACK`] is set; frees — and libtest's harness threads, which
/// allocate at their own pace — are not interesting here.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialized so the first access inside `alloc` itself never
    // allocates.
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracking() {
    TRACK.with(|t| {
        if t.get() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

// SAFETY: pure pass-through to `System`, which upholds the GlobalAlloc
// contract; the only addition is a thread-local counter bump that never
// allocates or touches the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`;
        // forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` came from this allocator with
        // this `layout`; forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracking();
        // SAFETY: caller guarantees `ptr`/`layout` validity per the
        // GlobalAlloc contract; forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A deterministic mixed-payload event stream: scheduling, filtered and
/// unfiltered network, and suppressed filesystem events.
fn payload_for(i: u64) -> EventPayload {
    // Decoupled from `i % 4` below so network events cycle pids 1..=4
    // (the filtered analyzer admits only 1 and 2).
    let pid = Pid(1 + ((i >> 2) % 4) as u32);
    match i % 4 {
        0 => EventPayload::Net {
            point: NetPoint::RxNic,
            flow: FlowKey::new(
                EndPoint::new(Ip(1), Port(5000)),
                EndPoint::new(Ip(2), Port(80)),
            ),
            packet: PacketId(i),
            size: 512,
            pid: Some(pid),
            arm: None,
        },
        1 => EventPayload::ProcessWake { pid },
        2 => EventPayload::ContextSwitch {
            from: Some(pid),
            to: None,
        },
        // No FILESYSTEM subscriber: exercises the disabled-hook path.
        _ => EventPayload::FileRead {
            pid,
            file: FileId(7),
            bytes: 4096,
        },
    }
}

#[test]
fn million_event_emit_loop_allocates_nothing_after_warmup() {
    let mut kprof = Kprof::new(NodeId(0));
    kprof.register(Box::new(CountingAnalyzer::new(EventMask::SCHEDULING)));
    kprof.register(Box::new(CountingAnalyzer::new(EventMask::NETWORK)));
    // A predicate-bearing analyzer so the compiled matcher runs too
    // (pid 3 events exercise the rejection path).
    struct Filtered;
    impl kprof::Analyzer for Filtered {
        fn name(&self) -> &str {
            "filtered"
        }
        fn interest(&self) -> kprof::Interest {
            kprof::Interest {
                mask: EventMask::NETWORK,
                predicate: Predicate::new().pids([Pid(1), Pid(2)]).ports([Port(80)]),
            }
        }
        fn on_event(&mut self, _e: &kprof::Event) -> kprof::AnalyzerOutcome {
            kprof::AnalyzerOutcome::default()
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    kprof.register(Box::new(Filtered));

    // Warmup: lets the dispatch tables, pid table, and any lazy runtime
    // structures settle.
    for i in 0..10_000u64 {
        let ev = kprof.make_event(SimTime::from_micros(i), 0, payload_for(i));
        kprof.emit(&ev);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    TRACK.with(|t| t.set(true));
    for i in 10_000..1_010_000u64 {
        let ev = kprof.make_event(SimTime::from_micros(i), 0, payload_for(i));
        let result = kprof.emit(&ev);
        // EmitResult's buffer_full vec must be the shared empty vec, not
        // a fresh allocation.
        assert!(result.buffer_full.is_empty());
    }
    TRACK.with(|t| t.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "emit hot path allocated {} times across 1M post-warmup events",
        after - before
    );
    // Sanity: the loop really did dispatch and reject.
    let stats = kprof.stats();
    assert!(stats.events_delivered > 0);
    assert!(stats.predicate_rejections > 0);
    assert!(stats.events_suppressed > 0);
}
