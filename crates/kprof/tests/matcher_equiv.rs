//! Pins the equivalence promised by [`kprof::CompiledPredicate`]: the
//! flat sorted-slice matchers the registry probes on the emit hot path
//! accept and reject exactly the events the `HashSet`-backed
//! [`kprof::Predicate`] interpreter does — including the registry-level
//! consequence that `KprofStats::predicate_rejections` is unchanged by
//! the compiled dispatch path.

use kprof::{
    Analyzer, AnalyzerOutcome, CompiledPredicate, CountingAnalyzer, Event, EventMask, EventPayload,
    GroupId, Interest, Kprof, NetPoint, Pid, Predicate,
};
use proptest::prelude::*;
use simcore::{NodeId, SimRng, SimTime};
use simnet::{EndPoint, FlowKey, Ip, PacketId, Port};

fn random_predicate(rng: &mut SimRng) -> Predicate {
    let mut p = Predicate::new();
    if rng.chance(0.5) {
        let n = rng.uniform_u64(0, 5) as usize;
        p = p.pids((0..n).map(|_| Pid(rng.uniform_u64(1, 9) as u32)));
    }
    if rng.chance(0.5) {
        let n = rng.uniform_u64(0, 4) as usize;
        p = p.gids((0..n).map(|_| GroupId(rng.uniform_u64(1, 6) as u32)));
    }
    if rng.chance(0.5) {
        let n = rng.uniform_u64(0, 4) as usize;
        p = p.ports((0..n).map(|_| Port(rng.uniform_u64(1, 100) as u16)));
    }
    p
}

fn random_payload(rng: &mut SimRng) -> EventPayload {
    match rng.index(5) {
        0 => EventPayload::ProcessWake {
            pid: Pid(rng.uniform_u64(1, 9) as u32),
        },
        1 => EventPayload::ContextSwitch {
            from: None,
            to: None,
        },
        2 | 3 => {
            let src = Port(rng.uniform_u64(1, 100) as u16);
            let dst = Port(rng.uniform_u64(1, 100) as u16);
            let pid = if rng.chance(0.7) {
                Some(Pid(rng.uniform_u64(1, 9) as u32))
            } else {
                None
            };
            EventPayload::Net {
                point: NetPoint::RxNic,
                flow: FlowKey::new(EndPoint::new(Ip(1), src), EndPoint::new(Ip(2), dst)),
                packet: PacketId(0),
                size: 64,
                pid,
                arm: None,
            }
        }
        _ => EventPayload::ContextSwitch {
            from: Some(Pid(rng.uniform_u64(1, 9) as u32)),
            to: Some(Pid(rng.uniform_u64(1, 9) as u32)),
        },
    }
}

fn event(payload: EventPayload) -> Event {
    Event {
        seq: 0,
        node: NodeId(0),
        cpu: 0,
        wall: SimTime::ZERO,
        payload,
    }
}

/// Executable generative sweep: 300 random predicates, each probed with
/// 64 random events against a random pid→gid table.
#[test]
fn compiled_matcher_equals_interpreter_on_random_predicates() {
    let mut rng = SimRng::seed(0xC0_11EC7);
    let mut agree = 0u64;
    for case in 0..300 {
        let pred = random_predicate(&mut rng);
        let compiled = CompiledPredicate::compile(&pred);
        assert_eq!(compiled.is_match_all(), pred.is_match_all());
        // A random partial pid→gid table, like the registry's.
        let table: Vec<Option<GroupId>> = (0..10)
            .map(|_| {
                rng.chance(0.6)
                    .then(|| GroupId(rng.uniform_u64(1, 6) as u32))
            })
            .collect();
        let gid_of = |pid: Pid| table.get(pid.0 as usize).copied().flatten();
        for _ in 0..64 {
            let ev = event(random_payload(&mut rng));
            let interpreted = pred.matches(&ev, gid_of);
            let fast = compiled.matches(&ev, gid_of);
            assert_eq!(
                fast, interpreted,
                "case {case}: {pred:?} disagrees on {:?}",
                ev.payload
            );
            agree += 1;
        }
    }
    assert_eq!(agree, 300 * 64);
}

struct Filtered {
    predicate: Predicate,
}

impl Analyzer for Filtered {
    fn name(&self) -> &str {
        "filtered"
    }
    fn interest(&self) -> Interest {
        Interest {
            mask: EventMask::ALL,
            predicate: self.predicate.clone(),
        }
    }
    fn on_event(&mut self, _e: &Event) -> AnalyzerOutcome {
        AnalyzerOutcome::default()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Registry-level consequence: `predicate_rejections` through the
/// compiled dispatch path equals a manual count made with the
/// interpreted `Predicate::matches` over the same event stream.
#[test]
fn registry_rejection_counts_match_interpreter() {
    let mut rng = SimRng::seed(0xD15BA7C);
    for case in 0..50 {
        let pred = random_predicate(&mut rng);
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(CountingAnalyzer::new(EventMask::ALL)));
        kprof.register(Box::new(Filtered {
            predicate: pred.clone(),
        }));

        let mut expected_rejections = 0u64;
        let mut expected_delivered = 0u64;
        for _ in 0..256 {
            let payload = random_payload(&mut rng);
            let ev = kprof.make_event(SimTime::ZERO, 0, payload);
            // The registry table is empty here (no ProcessCreate events),
            // mirroring `gid_of = |_| None`.
            if pred.matches(&ev, |_| None) {
                expected_delivered += 1;
            } else {
                expected_rejections += 1;
            }
            kprof.emit(&ev);
        }
        let stats = kprof.stats();
        assert_eq!(
            stats.predicate_rejections, expected_rejections,
            "case {case}: {pred:?}"
        );
        // CountingAnalyzer (match-all) sees every event; Filtered sees
        // the interpreter-accepted subset.
        assert_eq!(stats.events_delivered, 256 + expected_delivered);
    }
}

proptest! {
    /// Documentation of the property the seeded sweeps above execute:
    /// for every predicate built from arbitrary pid/gid/port sets and
    /// every event, `CompiledPredicate::compile(&p).matches(e, t) ==
    /// p.matches(e, t)`.
    #[test]
    fn prop_compiled_matches_interpreted(
        pids in collection::vec(1u32..9, 0..5),
        gids in collection::vec(1u32..6, 0..4),
        ports in collection::vec(1u16..100, 0..4),
    ) {
        let p = Predicate::new()
            .pids(pids.iter().map(|&x| Pid(x)))
            .gids(gids.iter().map(|&x| GroupId(x)))
            .ports(ports.iter().map(|&x| Port(x)));
        let c = CompiledPredicate::compile(&p);
        let e = Event {
            seq: 0,
            node: NodeId(0),
            cpu: 0,
            wall: SimTime::ZERO,
            payload: EventPayload::ProcessWake { pid: Pid(1) },
        };
        prop_assert_eq!(c.matches(&e, |_| None), p.matches(&e, |_| None));
    }
}
