//! The analyzer callback interface.
//!
//! "During initialization, each LPA registers a callback with Kprof, and it
//! specifies a list of events that need to be delivered to it. These
//! callbacks are in the 'fast path' of the kernel code … it is necessary
//! that they never block and are computationally small." (§2)

use simcore::SimDuration;

use crate::{Event, EventMask, Predicate};

/// Identifier of a registered analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnalyzerId(pub u32);

/// What an analyzer wants delivered: an event-kind mask plus a pruning
/// predicate.
#[derive(Debug, Clone, Default)]
pub struct Interest {
    /// Event kinds to deliver.
    pub mask: EventMask,
    /// Pruning predicate applied before delivery.
    pub predicate: Predicate,
}

impl Interest {
    /// Interest in all events of the given mask, unpredicated.
    pub fn mask(mask: EventMask) -> Interest {
        Interest {
            mask,
            predicate: Predicate::new(),
        }
    }
}

/// Result of one analyzer callback invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalyzerOutcome {
    /// CPU time the callback consumed; charged to the node as monitoring
    /// overhead.
    pub cost: SimDuration,
    /// True when the analyzer's active buffer just filled: Kprof surfaces
    /// this so the kernel can notify the dissemination daemon, which swaps
    /// and drains the buffer.
    pub buffer_full: bool,
}

impl AnalyzerOutcome {
    /// An outcome with only a cost.
    pub fn cost(cost: SimDuration) -> AnalyzerOutcome {
        AnalyzerOutcome {
            cost,
            buffer_full: false,
        }
    }
}

/// A local performance analyzer registered with [`Kprof`](crate::Kprof).
///
/// Implementations must behave like in-kernel fast-path code: no blocking,
/// bounded work per event, and honest reporting of the work done (the
/// simulation charges it as perturbation).
pub trait Analyzer: std::any::Any {
    /// Short name for diagnostics.
    fn name(&self) -> &str;

    /// What this analyzer wants delivered. Called at registration and after
    /// every [`Kprof::update_interest`](crate::Kprof::update_interest), so
    /// interest may change at runtime (the controller's granularity knob).
    fn interest(&self) -> Interest;

    /// Handles one event. Runs in the kernel fast path.
    fn on_event(&mut self, event: &Event) -> AnalyzerOutcome;

    /// Upcast for inspection (lets the daemon and tests reach the concrete
    /// analyzer behind the trait object).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast (lets the daemon drain analyzer buffers).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A trivial analyzer that counts delivered events — useful in tests and
/// for measuring raw instrumentation rates.
#[derive(Debug, Clone)]
pub struct CountingAnalyzer {
    mask: EventMask,
    seen: u64,
    per_event_cost: SimDuration,
}

impl CountingAnalyzer {
    /// Counts events matching `mask` at the default (60 ns) per-event cost.
    pub fn new(mask: EventMask) -> Self {
        CountingAnalyzer {
            mask,
            seen: 0,
            per_event_cost: SimDuration::from_nanos(60),
        }
    }

    /// Overrides the cost the analyzer reports per event.
    #[must_use]
    pub fn with_cost(mut self, cost: SimDuration) -> Self {
        self.per_event_cost = cost;
        self
    }

    /// Number of events delivered so far.
    pub fn events_seen(&self) -> u64 {
        self.seen
    }
}

impl Analyzer for CountingAnalyzer {
    fn name(&self) -> &str {
        "counting"
    }

    fn interest(&self) -> Interest {
        Interest::mask(self.mask)
    }

    fn on_event(&mut self, _event: &Event) -> AnalyzerOutcome {
        self.seen += 1;
        AnalyzerOutcome::cost(self.per_event_cost)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventPayload, Pid};
    use simcore::{NodeId, SimTime};

    #[test]
    fn counting_analyzer_counts_and_costs() {
        let mut a = CountingAnalyzer::new(EventMask::ALL).with_cost(SimDuration::from_nanos(10));
        let ev = Event {
            seq: 0,
            node: NodeId(0),
            cpu: 0,
            wall: SimTime::ZERO,
            payload: EventPayload::ProcessWake { pid: Pid(1) },
        };
        let out = a.on_event(&ev);
        assert_eq!(out.cost, SimDuration::from_nanos(10));
        assert!(!out.buffer_full);
        assert_eq!(a.events_seen(), 1);
        assert_eq!(a.name(), "counting");
    }
}
