//! Per-CPU double buffering.
//!
//! "Each LPA maintains two per-CPU buffers to store captured data, and when
//! one of them has been filled, the dissemination daemon is notified, and
//! the LPA switches to the next buffer. Each such buffer switch requires
//! interrupts to be disabled locally to avoid data corruption." (§2)
//!
//! The simulation models the interrupt-disable window as a fixed cost the
//! caller charges when [`DoubleBuffer::push`] reports a switch.

use simcore::SimDuration;

/// Which of the two buffers is currently active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferSide {
    /// Buffer A is active.
    A,
    /// Buffer B is active.
    B,
}

impl BufferSide {
    fn other(self) -> BufferSide {
        match self {
            BufferSide::A => BufferSide::B,
            BufferSide::B => BufferSide::A,
        }
    }
}

/// A two-sided record buffer: writers append to the active side; the
/// dissemination daemon drains the inactive side.
///
/// If the daemon has not drained the inactive side by the time the active
/// side fills, the inactive side's contents are **overwritten** — "if the
/// data is not picked up in a timely fashion, it may be overwritten" — and
/// the loss is counted in [`overwritten`](DoubleBuffer::overwritten).
#[derive(Debug, Clone)]
pub struct DoubleBuffer<T> {
    a: Vec<T>,
    b: Vec<T>,
    active: BufferSide,
    capacity: usize,
    overwritten: u64,
    switches: u64,
    /// Modeled cost of the interrupt-disable window around a switch.
    switch_cost: SimDuration,
}

impl<T> DoubleBuffer<T> {
    /// Creates a double buffer whose sides hold `capacity` records each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        DoubleBuffer {
            a: Vec::with_capacity(capacity),
            b: Vec::with_capacity(capacity),
            active: BufferSide::A,
            capacity,
            overwritten: 0,
            switches: 0,
            switch_cost: SimDuration::from_nanos(400),
        }
    }

    /// Overrides the modeled interrupt-disable cost per switch.
    #[must_use]
    pub fn with_switch_cost(mut self, cost: SimDuration) -> Self {
        self.switch_cost = cost;
        self
    }

    fn side(&self, side: BufferSide) -> &Vec<T> {
        match side {
            BufferSide::A => &self.a,
            BufferSide::B => &self.b,
        }
    }

    fn side_mut(&mut self, side: BufferSide) -> &mut Vec<T> {
        match side {
            BufferSide::A => &mut self.a,
            BufferSide::B => &mut self.b,
        }
    }

    /// Appends a record to the active side. Returns `Some(cost)` when this
    /// push filled the active buffer and triggered a switch (the caller
    /// should notify the daemon and charge the cost); `None` otherwise.
    pub fn push(&mut self, record: T) -> Option<SimDuration> {
        let active = self.active;
        self.side_mut(active).push(record);
        if self.side(active).len() >= self.capacity {
            let inactive = active.other();
            let lost = self.side(inactive).len();
            if lost > 0 {
                self.overwritten += lost as u64;
                self.side_mut(inactive).clear();
            }
            self.active = inactive;
            self.switches += 1;
            Some(self.switch_cost)
        } else {
            None
        }
    }

    /// Drains the **inactive** (full) side — what the daemon copies out on a
    /// buffer-full notification.
    pub fn drain_inactive(&mut self) -> Vec<T> {
        let inactive = self.active.other();
        std::mem::take(self.side_mut(inactive))
    }

    /// Drains both sides (used at shutdown / end of experiment so the tail
    /// of the data is not lost).
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = std::mem::take(self.side_mut(self.active.other()));
        out.append(self.side_mut(self.active));
        out
    }

    /// Records in the active side.
    pub fn active_len(&self) -> usize {
        self.side(self.active).len()
    }

    /// Records waiting in the inactive side.
    pub fn inactive_len(&self) -> usize {
        self.side(self.active.other()).len()
    }

    /// Per-side capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records lost to overwrites (daemon too slow).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Number of buffer switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Currently active side.
    pub fn active_side(&self) -> BufferSide {
        self.active
    }
}

/// One [`DoubleBuffer`] per CPU, as the paper prescribes for LPAs on
/// multiprocessor nodes.
#[derive(Debug, Clone)]
pub struct PerCpuBuffers<T> {
    buffers: Vec<DoubleBuffer<T>>,
}

impl<T> PerCpuBuffers<T> {
    /// Creates buffers for `cpus` CPUs, each side holding `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` or `capacity` is zero.
    pub fn new(cpus: usize, capacity: usize) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        PerCpuBuffers {
            buffers: (0..cpus).map(|_| DoubleBuffer::new(capacity)).collect(),
        }
    }

    /// The buffer for a CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu(&self, cpu: u16) -> &DoubleBuffer<T> {
        &self.buffers[cpu as usize]
    }

    /// The mutable buffer for a CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu_mut(&mut self, cpu: u16) -> &mut DoubleBuffer<T> {
        &mut self.buffers[cpu as usize]
    }

    /// Number of CPUs covered.
    pub fn cpus(&self) -> usize {
        self.buffers.len()
    }

    /// Drains every side of every CPU buffer.
    pub fn drain_all(&mut self) -> Vec<T> {
        self.buffers
            .iter_mut()
            .flat_map(|b| b.drain_all())
            .collect()
    }

    /// Total records lost to overwrites across CPUs.
    pub fn overwritten(&self) -> u64 {
        self.buffers.iter().map(|b| b.overwritten()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_until_switch() {
        let mut db = DoubleBuffer::new(3);
        assert!(db.push(1).is_none());
        assert!(db.push(2).is_none());
        let cost = db.push(3);
        assert!(cost.is_some(), "third push fills and switches");
        assert_eq!(db.switches(), 1);
        assert_eq!(db.active_side(), BufferSide::B);
        assert_eq!(db.inactive_len(), 3);
        assert_eq!(db.drain_inactive(), vec![1, 2, 3]);
    }

    #[test]
    fn overwrite_when_daemon_slow() {
        let mut db = DoubleBuffer::new(2);
        db.push(1);
        db.push(2); // switch #1, A full (1,2)
        db.push(3);
        db.push(4); // switch #2: A not drained -> overwritten
        assert_eq!(db.overwritten(), 2);
        assert_eq!(db.drain_inactive(), vec![3, 4]);
    }

    #[test]
    fn drain_all_preserves_order_and_tail() {
        let mut db = DoubleBuffer::new(3);
        for i in 0..5 {
            db.push(i);
        }
        // Side A filled with 0,1,2 (switched), active B holds 3,4.
        assert_eq!(db.drain_all(), vec![0, 1, 2, 3, 4]);
        assert_eq!(db.active_len(), 0);
        assert_eq!(db.inactive_len(), 0);
    }

    #[test]
    fn switch_cost_is_configurable() {
        let mut db = DoubleBuffer::new(1).with_switch_cost(SimDuration::from_micros(1));
        assert_eq!(db.push(0), Some(SimDuration::from_micros(1)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DoubleBuffer::<u8>::new(0);
    }

    #[test]
    fn per_cpu_buffers_are_independent() {
        let mut pc = PerCpuBuffers::new(2, 2);
        pc.cpu_mut(0).push(10);
        pc.cpu_mut(1).push(20);
        assert_eq!(pc.cpu(0).active_len(), 1);
        assert_eq!(pc.cpu(1).active_len(), 1);
        assert_eq!(pc.cpus(), 2);
        let mut all = pc.drain_all();
        all.sort_unstable();
        assert_eq!(all, vec![10, 20]);
    }

    proptest! {
        /// No record is ever silently lost: pushed = drained + overwritten.
        #[test]
        fn prop_conservation(cap in 1usize..16, n in 0usize..200) {
            let mut db = DoubleBuffer::new(cap);
            let mut drained = 0u64;
            for i in 0..n {
                if db.push(i).is_some() && i % 3 == 0 {
                    // Daemon keeps up only sometimes.
                    drained += db.drain_inactive().len() as u64;
                }
            }
            drained += db.drain_all().len() as u64;
            prop_assert_eq!(drained + db.overwritten(), n as u64);
        }
    }
}
