//! Identifier vocabulary shared between the instrumented kernel and the
//! analyzers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A process group identifier ("group IDs" in the paper's predicate list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gid{}", self.0)
    }
}

/// A per-process file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// A filesystem object (inode-like) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// A block device identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DiskId(pub u16);

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

/// System call kinds instrumented by Kprof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyscallKind {
    /// `open(2)`
    Open,
    /// `close(2)`
    Close,
    /// `read(2)` on a file
    Read,
    /// `write(2)` on a file
    Write,
    /// `fsync(2)`
    Fsync,
    /// `send(2)`-family on a socket
    Send,
    /// `recv(2)`-family on a socket
    Recv,
    /// `fork(2)`
    Fork,
    /// `exit(2)`
    Exit,
    /// `nanosleep(2)`
    Sleep,
}

impl fmt::Display for SyscallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SyscallKind::Open => "open",
            SyscallKind::Close => "close",
            SyscallKind::Read => "read",
            SyscallKind::Write => "write",
            SyscallKind::Fsync => "fsync",
            SyscallKind::Send => "send",
            SyscallKind::Recv => "recv",
            SyscallKind::Fork => "fork",
            SyscallKind::Exit => "exit",
            SyscallKind::Sleep => "nanosleep",
        };
        f.write_str(s)
    }
}

/// Why a process stopped running (carried by `ProcessBlock` events; the LPA
/// uses it to attribute blocked time, e.g. "was it blocked for I/O?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockReason {
    /// Waiting for a block-device transfer.
    DiskIo,
    /// Waiting for data on a socket.
    SocketRecv,
    /// Waiting for socket send-buffer space.
    SocketSend,
    /// Voluntary sleep.
    Sleep,
    /// Waiting on a child process.
    WaitChild,
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockReason::DiskIo => "disk-io",
            BlockReason::SocketRecv => "socket-recv",
            BlockReason::SocketSend => "socket-send",
            BlockReason::Sleep => "sleep",
            BlockReason::WaitChild => "wait-child",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_compact_and_nonempty() {
        assert_eq!(Pid(3).to_string(), "pid3");
        assert_eq!(GroupId(1).to_string(), "gid1");
        assert_eq!(Fd(0).to_string(), "fd0");
        assert_eq!(FileId(9).to_string(), "file9");
        assert_eq!(DiskId(2).to_string(), "disk2");
        assert_eq!(SyscallKind::Recv.to_string(), "recv");
        assert_eq!(BlockReason::DiskIo.to_string(), "disk-io");
    }
}
