//! The binary event vocabulary: what the instrumented kernel emits.

use std::fmt;

use serde::{Deserialize, Serialize};
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FlowKey, PacketId};

use crate::{BlockReason, DiskId, FileId, GroupId, Pid, SyscallKind};

/// The four event classes of §2 ("Scheduling events, System Call events,
/// Network events, and File System events").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventClass {
    /// Context switches, process creation/deletion, block/wake.
    Scheduling,
    /// System call entry/exit.
    Syscall,
    /// Packet movement through the protocol stack.
    Network,
    /// VFS operations and block I/O.
    FileSystem,
}

/// Where in the network stack a packet was observed.
///
/// Figure 1 of the paper marks the latency at each step of protocol
/// processing; these are those steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetPoint {
    /// Inbound: the NIC raised the receive interrupt.
    RxNic,
    /// Inbound: protocol processing finished; packet placed in the socket
    /// receive buffer.
    RxSocketBuffer,
    /// Inbound: payload copied to user space by a `recv` syscall.
    RxDeliverUser,
    /// Outbound: payload entered the kernel via a `send` syscall.
    TxFromUser,
    /// Outbound: protocol processing finished; packet queued at the device.
    TxDeviceQueue,
    /// Outbound: the NIC finished transmitting the packet.
    TxNicDone,
    /// The packet was dropped (buffer overflow) at this node.
    Drop,
}

impl NetPoint {
    /// True for points on the receive path.
    pub fn is_rx(self) -> bool {
        matches!(
            self,
            NetPoint::RxNic | NetPoint::RxSocketBuffer | NetPoint::RxDeliverUser
        )
    }
}

/// Discriminant of an instrumentation point; each kind is one bit in an
/// [`EventMask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)] // names mirror EventPayload variants, documented there
pub enum EventKind {
    ContextSwitch = 0,
    ProcessCreate = 1,
    ProcessExit = 2,
    ProcessBlock = 3,
    ProcessWake = 4,
    SyscallEntry = 5,
    SyscallExit = 6,
    NetRxNic = 7,
    NetRxSocketBuffer = 8,
    NetRxDeliverUser = 9,
    NetTxFromUser = 10,
    NetTxDeviceQueue = 11,
    NetTxNicDone = 12,
    NetDrop = 13,
    FileOpen = 14,
    FileClose = 15,
    FileRead = 16,
    FileWrite = 17,
    BlockIoStart = 18,
    BlockIoComplete = 19,
}

impl EventKind {
    /// All kinds, in bit order.
    pub const ALL: [EventKind; 20] = [
        EventKind::ContextSwitch,
        EventKind::ProcessCreate,
        EventKind::ProcessExit,
        EventKind::ProcessBlock,
        EventKind::ProcessWake,
        EventKind::SyscallEntry,
        EventKind::SyscallExit,
        EventKind::NetRxNic,
        EventKind::NetRxSocketBuffer,
        EventKind::NetRxDeliverUser,
        EventKind::NetTxFromUser,
        EventKind::NetTxDeviceQueue,
        EventKind::NetTxNicDone,
        EventKind::NetDrop,
        EventKind::FileOpen,
        EventKind::FileClose,
        EventKind::FileRead,
        EventKind::FileWrite,
        EventKind::BlockIoStart,
        EventKind::BlockIoComplete,
    ];

    /// The class this kind belongs to.
    pub fn class(self) -> EventClass {
        use EventKind::*;
        match self {
            ContextSwitch | ProcessCreate | ProcessExit | ProcessBlock | ProcessWake => {
                EventClass::Scheduling
            }
            SyscallEntry | SyscallExit => EventClass::Syscall,
            NetRxNic | NetRxSocketBuffer | NetRxDeliverUser | NetTxFromUser | NetTxDeviceQueue
            | NetTxNicDone | NetDrop => EventClass::Network,
            FileOpen | FileClose | FileRead | FileWrite | BlockIoStart | BlockIoComplete => {
                EventClass::FileSystem
            }
        }
    }
}

/// A set of [`EventKind`]s, used for selective enabling and subscription.
///
/// # Example
///
/// ```
/// use kprof::{EventKind, EventMask};
/// let m = EventMask::NETWORK | EventMask::only(EventKind::ContextSwitch);
/// assert!(m.contains(EventKind::NetRxNic));
/// assert!(m.contains(EventKind::ContextSwitch));
/// assert!(!m.contains(EventKind::FileRead));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct EventMask(u32);

impl EventMask {
    /// The empty mask.
    pub const NONE: EventMask = EventMask(0);
    /// Every kind.
    pub const ALL: EventMask = EventMask((1 << 20) - 1);
    /// All Scheduling-class kinds.
    pub const SCHEDULING: EventMask = EventMask(0b11111);
    /// All Syscall-class kinds.
    pub const SYSCALL: EventMask = EventMask(0b11 << 5);
    /// All Network-class kinds.
    pub const NETWORK: EventMask = EventMask(0b111_1111 << 7);
    /// All FileSystem-class kinds.
    pub const FILESYSTEM: EventMask = EventMask(0b11_1111 << 14);

    /// A mask with exactly one kind.
    pub const fn only(kind: EventKind) -> EventMask {
        EventMask(1 << kind as u32)
    }

    /// A mask covering a whole class.
    pub fn class(class: EventClass) -> EventMask {
        match class {
            EventClass::Scheduling => Self::SCHEDULING,
            EventClass::Syscall => Self::SYSCALL,
            EventClass::Network => Self::NETWORK,
            EventClass::FileSystem => Self::FILESYSTEM,
        }
    }

    /// Whether `kind` is in the mask.
    pub const fn contains(self, kind: EventKind) -> bool {
        self.0 & (1 << kind as u32) != 0
    }

    /// Adds a kind, returning the extended mask.
    #[must_use]
    pub const fn with(self, kind: EventKind) -> EventMask {
        EventMask(self.0 | (1 << kind as u32))
    }

    /// Removes a kind, returning the reduced mask.
    #[must_use]
    pub const fn without(self, kind: EventKind) -> EventMask {
        EventMask(self.0 & !(1 << kind as u32))
    }

    /// Set intersection.
    #[must_use]
    pub const fn intersect(self, other: EventMask) -> EventMask {
        EventMask(self.0 & other.0)
    }

    /// True if no kinds are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of kinds set.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }
}

impl std::ops::BitOr for EventMask {
    type Output = EventMask;
    fn bitor(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for EventMask {
    fn bitor_assign(&mut self, rhs: EventMask) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for EventMask {
    type Output = EventMask;
    fn bitand(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 & rhs.0)
    }
}

/// The payload of one instrumentation event. Every variant corresponds to a
/// statically instrumented point in the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventPayload {
    /// The CPU switched from one process to another (`None` = idle).
    ContextSwitch {
        /// Previously running process.
        from: Option<Pid>,
        /// Newly running process.
        to: Option<Pid>,
    },
    /// A process was created.
    ProcessCreate {
        /// The new process.
        pid: Pid,
        /// Its parent, if any.
        parent: Option<Pid>,
        /// Its process group.
        gid: GroupId,
    },
    /// A process exited.
    ProcessExit {
        /// The exiting process.
        pid: Pid,
    },
    /// A process blocked.
    ProcessBlock {
        /// The blocking process.
        pid: Pid,
        /// Why it blocked.
        reason: BlockReason,
    },
    /// A blocked process became runnable.
    ProcessWake {
        /// The woken process.
        pid: Pid,
    },
    /// A system call entered the kernel.
    SyscallEntry {
        /// Calling process.
        pid: Pid,
        /// Which call.
        kind: SyscallKind,
    },
    /// A system call returned to user space.
    SyscallExit {
        /// Calling process.
        pid: Pid,
        /// Which call.
        kind: SyscallKind,
        /// Kernel time consumed by the call (what `Figure 1`'s per-step
        /// latencies are made of).
        kernel_time: SimDuration,
    },
    /// A packet was observed at a point in the network stack.
    Net {
        /// Where in the stack.
        point: NetPoint,
        /// The packet's directed flow.
        flow: FlowKey,
        /// Packet id (stable across stack layers on one node).
        packet: PacketId,
        /// Wire size in bytes.
        size: u32,
        /// The process the packet is for/from, where the stack knows it
        /// (socket-buffer and user-copy points).
        pid: Option<Pid>,
        /// ARM-style application correlator, present only when the owning
        /// application opted into Application Response Measurement
        /// tagging (§2: interleaved requests need "domain-specific
        /// knowledge and/or ARM support"). `None` for black-box apps.
        arm: Option<u64>,
    },
    /// A file was opened.
    FileOpen {
        /// Opening process.
        pid: Pid,
        /// The file.
        file: FileId,
    },
    /// A file was closed.
    FileClose {
        /// Closing process.
        pid: Pid,
        /// The file.
        file: FileId,
    },
    /// Bytes were read from a file.
    FileRead {
        /// Reading process.
        pid: Pid,
        /// The file.
        file: FileId,
        /// Bytes read.
        bytes: u64,
    },
    /// Bytes were written to a file.
    FileWrite {
        /// Writing process.
        pid: Pid,
        /// The file.
        file: FileId,
        /// Bytes written.
        bytes: u64,
    },
    /// A block-device transfer started.
    BlockIoStart {
        /// Device.
        disk: DiskId,
        /// Transfer size.
        bytes: u64,
        /// Process the transfer is charged to.
        pid: Option<Pid>,
    },
    /// A block-device transfer completed.
    BlockIoComplete {
        /// Device.
        disk: DiskId,
        /// Transfer size.
        bytes: u64,
        /// Process the transfer is charged to.
        pid: Option<Pid>,
    },
}

impl EventPayload {
    /// The instrumentation-point discriminant of this payload.
    pub fn kind(&self) -> EventKind {
        match self {
            EventPayload::ContextSwitch { .. } => EventKind::ContextSwitch,
            EventPayload::ProcessCreate { .. } => EventKind::ProcessCreate,
            EventPayload::ProcessExit { .. } => EventKind::ProcessExit,
            EventPayload::ProcessBlock { .. } => EventKind::ProcessBlock,
            EventPayload::ProcessWake { .. } => EventKind::ProcessWake,
            EventPayload::SyscallEntry { .. } => EventKind::SyscallEntry,
            EventPayload::SyscallExit { .. } => EventKind::SyscallExit,
            EventPayload::Net { point, .. } => match point {
                NetPoint::RxNic => EventKind::NetRxNic,
                NetPoint::RxSocketBuffer => EventKind::NetRxSocketBuffer,
                NetPoint::RxDeliverUser => EventKind::NetRxDeliverUser,
                NetPoint::TxFromUser => EventKind::NetTxFromUser,
                NetPoint::TxDeviceQueue => EventKind::NetTxDeviceQueue,
                NetPoint::TxNicDone => EventKind::NetTxNicDone,
                NetPoint::Drop => EventKind::NetDrop,
            },
            EventPayload::FileOpen { .. } => EventKind::FileOpen,
            EventPayload::FileClose { .. } => EventKind::FileClose,
            EventPayload::FileRead { .. } => EventKind::FileRead,
            EventPayload::FileWrite { .. } => EventKind::FileWrite,
            EventPayload::BlockIoStart { .. } => EventKind::BlockIoStart,
            EventPayload::BlockIoComplete { .. } => EventKind::BlockIoComplete,
        }
    }

    /// The pid this event is about, if any (used by predicates).
    pub fn pid(&self) -> Option<Pid> {
        match *self {
            EventPayload::ContextSwitch { to, .. } => to,
            EventPayload::ProcessCreate { pid, .. }
            | EventPayload::ProcessExit { pid }
            | EventPayload::ProcessBlock { pid, .. }
            | EventPayload::ProcessWake { pid }
            | EventPayload::SyscallEntry { pid, .. }
            | EventPayload::SyscallExit { pid, .. }
            | EventPayload::FileOpen { pid, .. }
            | EventPayload::FileClose { pid, .. }
            | EventPayload::FileRead { pid, .. }
            | EventPayload::FileWrite { pid, .. } => Some(pid),
            EventPayload::Net { pid, .. }
            | EventPayload::BlockIoStart { pid, .. }
            | EventPayload::BlockIoComplete { pid, .. } => pid,
        }
    }

    /// The flow this event is about, for network events.
    pub fn flow(&self) -> Option<FlowKey> {
        match self {
            EventPayload::Net { flow, .. } => Some(*flow),
            _ => None,
        }
    }
}

/// One monitoring event, as delivered to analyzers.
///
/// `wall` is the **node-local NTP wall-clock** timestamp — analyzers (and
/// especially the cross-node GPA) only ever see wall time, never the
/// simulator's hidden true time, reproducing the clock-correlation problem
/// the paper's GPA must solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Per-node monotone sequence number.
    pub seq: u64,
    /// The node this event occurred on.
    pub node: NodeId,
    /// The CPU it occurred on (index within the node).
    pub cpu: u16,
    /// Node-local wall-clock timestamp.
    pub wall: SimTime,
    /// What happened.
    pub payload: EventPayload,
}

impl Event {
    /// The instrumentation-point discriminant.
    pub fn kind(&self) -> EventKind {
        self.payload.kind()
    }

    /// The event class.
    pub fn class(&self) -> EventClass {
        self.kind().class()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} cpu{} #{}] {:?}",
            self.node,
            self.wall,
            self.cpu,
            self.seq,
            self.kind()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn class_masks_partition_all_kinds() {
        let union =
            EventMask::SCHEDULING | EventMask::SYSCALL | EventMask::NETWORK | EventMask::FILESYSTEM;
        assert_eq!(union, EventMask::ALL);
        // Pairwise disjoint.
        assert!(EventMask::SCHEDULING
            .intersect(EventMask::SYSCALL)
            .is_empty());
        assert!(EventMask::SYSCALL.intersect(EventMask::NETWORK).is_empty());
        assert!(EventMask::NETWORK
            .intersect(EventMask::FILESYSTEM)
            .is_empty());
        assert!(EventMask::SCHEDULING
            .intersect(EventMask::FILESYSTEM)
            .is_empty());
    }

    #[test]
    fn every_kind_is_in_its_class_mask() {
        for kind in EventKind::ALL {
            assert!(EventMask::class(kind.class()).contains(kind), "{kind:?}");
            assert!(EventMask::ALL.contains(kind));
            assert!(!EventMask::NONE.contains(kind));
        }
    }

    #[test]
    fn mask_with_without() {
        let m = EventMask::NONE.with(EventKind::FileRead);
        assert!(m.contains(EventKind::FileRead));
        assert_eq!(m.len(), 1);
        assert!(m.without(EventKind::FileRead).is_empty());
    }

    #[test]
    fn only_mask_is_single_bit() {
        for kind in EventKind::ALL {
            assert_eq!(EventMask::only(kind).len(), 1);
        }
    }

    #[test]
    fn payload_kind_matches_net_points() {
        let flow = FlowKey::new(
            simnet::EndPoint::new(simnet::Ip(1), simnet::Port(1)),
            simnet::EndPoint::new(simnet::Ip(2), simnet::Port(2)),
        );
        let make = |point| EventPayload::Net {
            point,
            flow,
            packet: PacketId(1),
            size: 100,
            pid: None,
            arm: None,
        };
        assert_eq!(make(NetPoint::RxNic).kind(), EventKind::NetRxNic);
        assert_eq!(make(NetPoint::Drop).kind(), EventKind::NetDrop);
        assert_eq!(make(NetPoint::TxNicDone).kind(), EventKind::NetTxNicDone);
        assert!(NetPoint::RxDeliverUser.is_rx());
        assert!(!NetPoint::TxFromUser.is_rx());
    }

    #[test]
    fn payload_pid_extraction() {
        assert_eq!(
            EventPayload::ProcessWake { pid: Pid(4) }.pid(),
            Some(Pid(4))
        );
        assert_eq!(
            EventPayload::ContextSwitch {
                from: Some(Pid(1)),
                to: None
            }
            .pid(),
            None
        );
        assert_eq!(
            EventPayload::BlockIoStart {
                disk: DiskId(0),
                bytes: 512,
                pid: Some(Pid(2))
            }
            .pid(),
            Some(Pid(2))
        );
    }

    proptest! {
        #[test]
        fn prop_mask_bitops_model_sets(bits_a in 0u32..(1 << 20), bits_b in 0u32..(1 << 20)) {
            let a = EventMask::NONE;
            let mut a = a;
            let mut b = EventMask::NONE;
            for kind in EventKind::ALL {
                if bits_a & (1 << kind as u32) != 0 { a = a.with(kind); }
                if bits_b & (1 << kind as u32) != 0 { b = b.with(kind); }
            }
            let or = a | b;
            let and = a & b;
            for kind in EventKind::ALL {
                prop_assert_eq!(or.contains(kind), a.contains(kind) || b.contains(kind));
                prop_assert_eq!(and.contains(kind), a.contains(kind) && b.contains(kind));
            }
        }
    }
}
