//! Event pruning predicates: "Events can also be pruned on the basis of
//! process IDs, group IDs, or other such predicates" (§2).

use std::collections::BTreeSet;

use simnet::Port;

use crate::{Event, EventPayload, GroupId, Pid};

/// A subscription-side filter evaluated before an analyzer callback runs.
///
/// An empty predicate matches everything. When several dimensions are set,
/// an event must satisfy all of them (conjunction). Events that carry no
/// pid (e.g. an idle context switch) fail pid/gid filters; network events
/// match a port filter if either flow endpoint uses one of the ports.
///
/// # Example
///
/// ```
/// use kprof::{Predicate, Pid};
/// let p = Predicate::new().pids([Pid(1), Pid(2)]);
/// assert!(!p.is_match_all());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Predicate {
    pids: Option<BTreeSet<Pid>>,
    gids: Option<BTreeSet<GroupId>>,
    ports: Option<BTreeSet<Port>>,
}

impl Predicate {
    /// A predicate that matches every event.
    pub fn new() -> Self {
        Predicate::default()
    }

    /// Restricts to events about the given processes.
    #[must_use]
    pub fn pids(mut self, pids: impl IntoIterator<Item = Pid>) -> Self {
        self.pids = Some(pids.into_iter().collect());
        self
    }

    /// Restricts to events about processes in the given groups. Group
    /// membership is resolved by the [`Kprof`](crate::Kprof) registry,
    /// which learns it from `ProcessCreate` events.
    #[must_use]
    pub fn gids(mut self, gids: impl IntoIterator<Item = GroupId>) -> Self {
        self.gids = Some(gids.into_iter().collect());
        self
    }

    /// Restricts network events to flows touching the given ports.
    /// Non-network events are unaffected by a port filter.
    #[must_use]
    pub fn ports(mut self, ports: impl IntoIterator<Item = Port>) -> Self {
        self.ports = Some(ports.into_iter().collect());
        self
    }

    /// True if this predicate has no constraints.
    pub fn is_match_all(&self) -> bool {
        self.pids.is_none() && self.gids.is_none() && self.ports.is_none()
    }

    /// Evaluates the predicate. `gid_of` resolves a pid to its process
    /// group (the registry's pid table).
    pub fn matches(&self, event: &Event, gid_of: impl Fn(Pid) -> Option<GroupId>) -> bool {
        if let Some(pids) = &self.pids {
            match event.payload.pid() {
                Some(pid) if pids.contains(&pid) => {}
                _ => return false,
            }
        }
        if let Some(gids) = &self.gids {
            match event.payload.pid().and_then(&gid_of) {
                Some(gid) if gids.contains(&gid) => {}
                _ => return false,
            }
        }
        if let Some(ports) = &self.ports {
            if let EventPayload::Net { flow, .. } = &event.payload {
                let touches = ports.contains(&flow.src.port) || ports.contains(&flow.dst.port);
                if !touches {
                    return false;
                }
            }
        }
        true
    }
}

/// A [`Predicate`] compiled to flat sorted slices for allocation-free,
/// cache-friendly evaluation on the emit hot path.
///
/// [`Kprof`](crate::Kprof) compiles each analyzer's predicate once at
/// registration (and again on
/// [`update_interest`](crate::Kprof::update_interest)), so the per-event
/// dispatch loop probes sorted slices instead of cloning `BTreeSet`-backed
/// predicates. Accept/reject behavior is **identical** to
/// [`Predicate::matches`] — a property test in `tests/matcher_equiv.rs`
/// pins the equivalence.
#[derive(Debug, Clone, Default)]
pub struct CompiledPredicate {
    pids: Option<Box<[Pid]>>,
    gids: Option<Box<[GroupId]>>,
    ports: Option<Box<[Port]>>,
}

fn sorted_slice<T: Ord + Copy>(set: &Option<BTreeSet<T>>) -> Option<Box<[T]>> {
    set.as_ref().map(|s| {
        let mut v: Vec<T> = s.iter().copied().collect();
        v.sort_unstable();
        v.into_boxed_slice()
    })
}

impl CompiledPredicate {
    /// Compiles a predicate. An empty dimension stays "unconstrained";
    /// constrained dimensions become sorted slices probed by binary
    /// search.
    pub fn compile(p: &Predicate) -> CompiledPredicate {
        CompiledPredicate {
            pids: sorted_slice(&p.pids),
            gids: sorted_slice(&p.gids),
            ports: sorted_slice(&p.ports),
        }
    }

    /// True if this predicate has no constraints.
    pub fn is_match_all(&self) -> bool {
        self.pids.is_none() && self.gids.is_none() && self.ports.is_none()
    }

    /// Evaluates the compiled predicate; exact same semantics as
    /// [`Predicate::matches`], without touching the heap.
    #[inline]
    pub fn matches(&self, event: &Event, gid_of: impl Fn(Pid) -> Option<GroupId>) -> bool {
        if let Some(pids) = &self.pids {
            match event.payload.pid() {
                Some(pid) if pids.binary_search(&pid).is_ok() => {}
                _ => return false,
            }
        }
        if let Some(gids) = &self.gids {
            match event.payload.pid().and_then(&gid_of) {
                Some(gid) if gids.binary_search(&gid).is_ok() => {}
                _ => return false,
            }
        }
        if let Some(ports) = &self.ports {
            if let EventPayload::Net { flow, .. } = &event.payload {
                let touches = ports.binary_search(&flow.src.port).is_ok()
                    || ports.binary_search(&flow.dst.port).is_ok();
                if !touches {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{NodeId, SimTime};
    use simnet::{EndPoint, FlowKey, Ip, PacketId};

    fn ev(payload: EventPayload) -> Event {
        Event {
            seq: 0,
            node: NodeId(0),
            cpu: 0,
            wall: SimTime::ZERO,
            payload,
        }
    }

    fn net_ev(src_port: u16, dst_port: u16) -> Event {
        ev(EventPayload::Net {
            point: crate::NetPoint::RxNic,
            flow: FlowKey::new(
                EndPoint::new(Ip(1), Port(src_port)),
                EndPoint::new(Ip(2), Port(dst_port)),
            ),
            packet: PacketId(0),
            size: 100,
            pid: None,
            arm: None,
        })
    }

    const NO_GID: fn(Pid) -> Option<GroupId> = |_| None;

    #[test]
    fn empty_predicate_matches_everything() {
        let p = Predicate::new();
        assert!(p.is_match_all());
        assert!(p.matches(&ev(EventPayload::ProcessWake { pid: Pid(1) }), NO_GID));
        assert!(p.matches(&net_ev(1, 2), NO_GID));
    }

    #[test]
    fn pid_filter() {
        let p = Predicate::new().pids([Pid(5)]);
        assert!(p.matches(&ev(EventPayload::ProcessWake { pid: Pid(5) }), NO_GID));
        assert!(!p.matches(&ev(EventPayload::ProcessWake { pid: Pid(6) }), NO_GID));
        // Events without a pid fail a pid filter.
        assert!(!p.matches(
            &ev(EventPayload::ContextSwitch {
                from: None,
                to: None
            }),
            NO_GID
        ));
    }

    #[test]
    fn gid_filter_resolves_via_table() {
        let p = Predicate::new().gids([GroupId(3)]);
        let table = |pid: Pid| (pid == Pid(7)).then_some(GroupId(3));
        assert!(p.matches(&ev(EventPayload::ProcessWake { pid: Pid(7) }), table));
        assert!(!p.matches(&ev(EventPayload::ProcessWake { pid: Pid(8) }), table));
    }

    #[test]
    fn port_filter_matches_either_endpoint() {
        let p = Predicate::new().ports([Port(2049)]);
        assert!(p.matches(&net_ev(2049, 777), NO_GID));
        assert!(p.matches(&net_ev(777, 2049), NO_GID));
        assert!(!p.matches(&net_ev(777, 888), NO_GID));
        // Non-network events are unaffected by the port dimension.
        assert!(p.matches(&ev(EventPayload::ProcessWake { pid: Pid(1) }), NO_GID));
    }

    #[test]
    fn compiled_predicate_mirrors_interpreted() {
        let table = |pid: Pid| (pid == Pid(7)).then_some(GroupId(3));
        let preds = [
            Predicate::new(),
            Predicate::new().pids([Pid(5)]),
            Predicate::new().gids([GroupId(3)]),
            Predicate::new().ports([Port(2049)]),
            Predicate::new().pids([Pid(7)]).gids([GroupId(3)]),
            Predicate::new().pids([Pid(1)]).ports([Port(80)]),
        ];
        let events = [
            ev(EventPayload::ProcessWake { pid: Pid(5) }),
            ev(EventPayload::ProcessWake { pid: Pid(7) }),
            ev(EventPayload::ContextSwitch {
                from: None,
                to: None,
            }),
            net_ev(2049, 777),
            net_ev(777, 2049),
            net_ev(777, 888),
            net_ev(80, 5),
        ];
        for p in &preds {
            let c = CompiledPredicate::compile(p);
            assert_eq!(c.is_match_all(), p.is_match_all());
            for e in &events {
                assert_eq!(
                    c.matches(e, table),
                    p.matches(e, table),
                    "{p:?} vs compiled on {:?}",
                    e.payload
                );
            }
        }
    }

    #[test]
    fn conjunction_of_dimensions() {
        let p = Predicate::new().pids([Pid(1)]).ports([Port(80)]);
        let mut e = net_ev(80, 5);
        if let EventPayload::Net { pid, .. } = &mut e.payload {
            *pid = Some(Pid(1));
        }
        assert!(p.matches(&e, NO_GID));
        let mut wrong_pid = e;
        if let EventPayload::Net { pid, .. } = &mut wrong_pid.payload {
            *pid = Some(Pid(2));
        }
        assert!(!p.matches(&wrong_pid, NO_GID));
    }
}
