//! Raw event tracing — the LTT-heritage capability underneath SysProf.
//!
//! "Kprof builds on our earlier dProc kernel-level monitor, and its
//! functionality is similar to the static kernel instrumentation offered
//! by LTT." Sometimes an administrator wants the raw event stream, not an
//! analysis: [`TraceAnalyzer`] is an [`Analyzer`] that records events into
//! a bounded ring, with text rendering for offline inspection.

use std::collections::VecDeque;

use simcore::SimDuration;

use crate::{Analyzer, AnalyzerOutcome, Event, EventMask, Interest, Predicate};

/// An analyzer that captures raw events into a bounded ring buffer.
///
/// # Example
///
/// ```
/// use kprof::{EventMask, Kprof, TraceAnalyzer, EventPayload, Pid};
/// use simcore::{NodeId, SimTime};
///
/// let mut kprof = Kprof::new(NodeId(0));
/// let id = kprof.register(Box::new(TraceAnalyzer::new(EventMask::SCHEDULING, 128)));
/// let ev = kprof.make_event(SimTime::from_micros(3), 0,
///                           EventPayload::ProcessWake { pid: Pid(9) });
/// kprof.emit(&ev);
/// let trace = kprof.analyzer_as::<TraceAnalyzer>(id).unwrap();
/// assert_eq!(trace.len(), 1);
/// assert!(trace.render().contains("ProcessWake"));
/// ```
pub struct TraceAnalyzer {
    mask: EventMask,
    predicate: Predicate,
    capacity: usize,
    ring: VecDeque<Event>,
    captured: u64,
    dropped: u64,
    per_event_cost: SimDuration,
}

impl TraceAnalyzer {
    /// A trace capturing events in `mask`, keeping the most recent
    /// `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(mask: EventMask, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceAnalyzer {
            mask,
            predicate: Predicate::new(),
            capacity,
            ring: VecDeque::with_capacity(capacity),
            captured: 0,
            dropped: 0,
            per_event_cost: SimDuration::from_nanos(90),
        }
    }

    /// Adds a pruning predicate.
    #[must_use]
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been captured (yet).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever captured.
    pub fn captured(&self) -> u64 {
        self.captured
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over the retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Drains the retained events (oldest first).
    pub fn take(&mut self) -> Vec<Event> {
        self.ring.drain(..).collect()
    }

    /// Renders the trace as text, one event per line (the
    /// `/proc/sysprof/trace` view).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.ring.len() * 64);
        for ev in &self.ring {
            out.push_str(&format!(
                "{:>12} cpu{} #{:<8} {:?}\n",
                ev.wall.as_micros(),
                ev.cpu,
                ev.seq,
                ev.payload
            ));
        }
        out
    }
}

impl Analyzer for TraceAnalyzer {
    fn name(&self) -> &str {
        "trace"
    }

    fn interest(&self) -> Interest {
        Interest {
            mask: self.mask,
            predicate: self.predicate.clone(),
        }
    }

    fn on_event(&mut self, event: &Event) -> AnalyzerOutcome {
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(*event);
        self.captured += 1;
        AnalyzerOutcome::cost(self.per_event_cost)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventPayload, Kprof, Pid};
    use simcore::{NodeId, SimTime};

    fn wake(kprof: &mut Kprof, pid: u32, us: u64) {
        let ev = kprof.make_event(
            SimTime::from_micros(us),
            0,
            EventPayload::ProcessWake { pid: Pid(pid) },
        );
        kprof.emit(&ev);
    }

    #[test]
    fn captures_in_order() {
        let mut kprof = Kprof::new(NodeId(0));
        let id = kprof.register(Box::new(TraceAnalyzer::new(EventMask::SCHEDULING, 16)));
        for i in 0..5 {
            wake(&mut kprof, i, i as u64 * 10);
        }
        let trace = kprof.analyzer_as::<TraceAnalyzer>(id).unwrap();
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.captured(), 5);
        let times: Vec<u64> = trace.events().map(|e| e.wall.as_micros()).collect();
        assert_eq!(times, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut kprof = Kprof::new(NodeId(0));
        let id = kprof.register(Box::new(TraceAnalyzer::new(EventMask::SCHEDULING, 3)));
        for i in 0..10 {
            wake(&mut kprof, i, i as u64);
        }
        let trace = kprof.analyzer_as::<TraceAnalyzer>(id).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 7);
        let pids: Vec<u32> = trace
            .events()
            .filter_map(|e| e.payload.pid().map(|p| p.0))
            .collect();
        assert_eq!(pids, vec![7, 8, 9], "keeps the most recent");
    }

    #[test]
    fn predicate_narrows_capture() {
        let mut kprof = Kprof::new(NodeId(0));
        let id = kprof.register(Box::new(
            TraceAnalyzer::new(EventMask::SCHEDULING, 16)
                .with_predicate(Predicate::new().pids([Pid(2)])),
        ));
        for i in 0..6 {
            wake(&mut kprof, i % 3, i as u64);
        }
        let trace = kprof.analyzer_as::<TraceAnalyzer>(id).unwrap();
        assert_eq!(trace.captured(), 2, "only pid 2's events");
    }

    #[test]
    fn take_drains_and_render_lists() {
        let mut kprof = Kprof::new(NodeId(0));
        let id = kprof.register(Box::new(TraceAnalyzer::new(EventMask::SCHEDULING, 8)));
        wake(&mut kprof, 1, 5);
        {
            let trace = kprof.analyzer_as::<TraceAnalyzer>(id).unwrap();
            let text = trace.render();
            assert!(text.contains("ProcessWake"), "{text}");
        }
        let trace = kprof.analyzer_as_mut::<TraceAnalyzer>(id).unwrap();
        let drained = trace.take();
        assert_eq!(drained.len(), 1);
        assert!(trace.is_empty());
    }
}
