//! Kprof: SysProf's kernel-level monitoring interface.
//!
//! Kprof is the layer the paper describes in §2: a set of statically
//! instrumented points in the (here: simulated) kernel that produce
//! efficient binary events in four classes — Scheduling, System Call,
//! Network, and File System — plus the machinery around them:
//!
//! * [`Event`] / [`EventPayload`] / [`EventKind`] — the binary event
//!   vocabulary emitted at each instrumentation point,
//! * [`EventMask`] — selective enabling: "events can be selectively
//!   switched on and off",
//! * [`Predicate`] — pruning "on the basis of process IDs, group IDs, or
//!   other such predicates",
//! * [`Analyzer`] — the callback interface local performance analyzers
//!   register; callbacks run in the kernel fast path, must never block, and
//!   report their own cost,
//! * [`Kprof`] — the per-node registry that dispatches events to
//!   subscribed analyzers and accounts for every nanosecond of monitoring
//!   overhead (the [`CostModel`]),
//! * [`DoubleBuffer`] / [`PerCpuBuffers`] — the per-CPU double-buffering
//!   scheme LPAs use to hand data to the dissemination daemon.
//!
//! When no analyzer subscribes to an event kind, the instrumentation point
//! costs only [`CostModel::disabled_hook`] — "almost negligible
//! perturbation for Kprof-instrumented operating system kernels".
//!
//! # Example
//!
//! ```
//! use kprof::{CountingAnalyzer, EventMask, Kprof, Pid};
//! use simcore::NodeId;
//!
//! let mut kprof = Kprof::new(NodeId(0));
//! let id = kprof.register(Box::new(CountingAnalyzer::new(EventMask::SCHEDULING)));
//! let ev = kprof.make_event(
//!     simcore::SimTime::from_micros(1),
//!     0,
//!     kprof::EventPayload::ProcessWake { pid: Pid(7) },
//! );
//! let result = kprof.emit(&ev);
//! assert!(result.cost > simcore::SimDuration::ZERO);
//! assert_eq!(kprof.counting_analyzer(id).unwrap().events_seen(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod buffer;
mod event;
mod ids;
mod predicate;
mod registry;
mod trace;

pub use analyzer::{Analyzer, AnalyzerId, AnalyzerOutcome, CountingAnalyzer, Interest};
pub use buffer::{BufferSide, DoubleBuffer, PerCpuBuffers};
pub use event::{Event, EventClass, EventKind, EventMask, EventPayload, NetPoint};
pub use ids::{BlockReason, DiskId, Fd, FileId, GroupId, Pid, SyscallKind};
pub use predicate::{CompiledPredicate, Predicate};
pub use registry::{CostModel, EmitResult, Kprof, KprofStats};
pub use trace::TraceAnalyzer;
