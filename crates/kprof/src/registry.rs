//! The per-node Kprof registry: event generation, selective dispatch, and
//! overhead accounting.

use std::collections::HashMap;

use simcore::{NodeId, SimDuration, SimTime};

use crate::{
    Analyzer, AnalyzerId, CompiledPredicate, CountingAnalyzer, Event, EventKind, EventMask,
    EventPayload, GroupId, Pid,
};

/// How much CPU time each piece of the monitoring path costs. All overhead
/// in the simulation flows through this model, so experiments can quantify
/// perturbation (the paper's "<1% … >10%" configurability claim).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of an instrumentation point whose kind no analyzer subscribes
    /// to (a branch on a mask word — "almost negligible perturbation").
    pub disabled_hook: SimDuration,
    /// Cost of assembling a binary event at an enabled point.
    pub enabled_hook: SimDuration,
    /// Dispatch cost per analyzer delivery (predicate check + call).
    pub per_delivery: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            disabled_hook: SimDuration::from_nanos(5),
            enabled_hook: SimDuration::from_nanos(150),
            per_delivery: SimDuration::from_nanos(100),
        }
    }
}

/// Counters describing what the monitoring layer did on this node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KprofStats {
    /// Events whose kind was enabled and that were built and dispatched.
    pub events_generated: u64,
    /// Total analyzer deliveries (one event may go to several analyzers).
    pub events_delivered: u64,
    /// Instrumentation-point hits whose kind no analyzer wanted.
    pub events_suppressed: u64,
    /// Deliveries suppressed by a predicate mismatch.
    pub predicate_rejections: u64,
    /// Total monitoring CPU time charged to this node.
    pub total_overhead: SimDuration,
}

struct Slot {
    id: AnalyzerId,
    active: bool,
    mask: EventMask,
    /// The analyzer's predicate, compiled to sorted slices at registration
    /// so the emit loop never clones the `HashSet`-backed [`Interest`].
    compiled: CompiledPredicate,
    analyzer: Box<dyn Analyzer>,
}

/// Result of emitting one event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmitResult {
    /// CPU time the emission consumed (hook + deliveries + analyzer work);
    /// the kernel charges this to the current CPU.
    pub cost: SimDuration,
    /// Analyzers whose active buffer filled during this emission; the
    /// kernel should wake the dissemination daemon for each.
    pub buffer_full: Vec<AnalyzerId>,
}

/// The per-node monitoring registry.
///
/// Owns the registered analyzers, knows which event kinds are wanted
/// (union of analyzer interests, gated by the controller's global mask),
/// maintains the pid→group table predicates need, and accounts every
/// nanosecond of monitoring overhead.
pub struct Kprof {
    node: NodeId,
    /// Controller-set global gate; intersected with analyzer interest.
    global_mask: EventMask,
    slots: Vec<Slot>,
    effective_mask: EventMask,
    /// Per-kind dispatch table: `dispatch[kind as usize]` holds the slot
    /// indices of the active analyzers interested in that kind, in
    /// registration order. Rebuilt on every (de)registration, activation
    /// toggle, interest update, or global-mask change — so `emit` walks
    /// exactly the interested analyzers instead of scanning every slot.
    dispatch: Vec<Vec<u32>>,
    /// Scratch for buffer-full notifications, reused across emissions so
    /// the hot path performs no heap allocation.
    full_scratch: Vec<AnalyzerId>,
    next_analyzer: u32,
    next_seq: u64,
    cost_model: CostModel,
    stats: KprofStats,
    pid_groups: HashMap<Pid, GroupId>,
}

impl Kprof {
    /// Creates a registry for `node` with the default cost model and all
    /// event kinds globally enabled (but nothing subscribed).
    pub fn new(node: NodeId) -> Self {
        Kprof {
            node,
            global_mask: EventMask::ALL,
            slots: Vec::new(),
            effective_mask: EventMask::NONE,
            dispatch: vec![Vec::new(); EventKind::ALL.len()],
            full_scratch: Vec::new(),
            next_analyzer: 0,
            next_seq: 0,
            cost_model: CostModel::default(),
            stats: KprofStats::default(),
            pid_groups: HashMap::new(),
        }
    }

    /// Replaces the cost model (experiment configuration).
    pub fn set_cost_model(&mut self, model: CostModel) {
        self.cost_model = model;
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// The node this registry instruments.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers an analyzer; its [`Interest`](crate::Interest) is read
    /// immediately. Returns the id used for later updates or removal.
    pub fn register(&mut self, analyzer: Box<dyn Analyzer>) -> AnalyzerId {
        let id = AnalyzerId(self.next_analyzer);
        self.next_analyzer += 1;
        let interest = analyzer.interest();
        self.slots.push(Slot {
            id,
            active: true,
            mask: interest.mask,
            compiled: CompiledPredicate::compile(&interest.predicate),
            analyzer,
        });
        self.recompute_mask();
        id
    }

    /// Unregisters an analyzer, returning it if present.
    pub fn unregister(&mut self, id: AnalyzerId) -> Option<Box<dyn Analyzer>> {
        let pos = self.slots.iter().position(|s| s.id == id)?;
        let slot = self.slots.remove(pos);
        self.recompute_mask();
        Some(slot.analyzer)
    }

    /// Enables or disables an analyzer without unregistering it (the
    /// controller's on/off switch). Returns false if the id is unknown.
    pub fn set_active(&mut self, id: AnalyzerId, active: bool) -> bool {
        let Some(slot) = self.slots.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        slot.active = active;
        self.recompute_mask();
        true
    }

    /// Re-reads an analyzer's interest after a runtime reconfiguration.
    /// Returns false if the id is unknown.
    pub fn update_interest(&mut self, id: AnalyzerId) -> bool {
        let Some(slot) = self.slots.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        let interest = slot.analyzer.interest();
        slot.mask = interest.mask;
        slot.compiled = CompiledPredicate::compile(&interest.predicate);
        self.recompute_mask();
        true
    }

    /// Sets the controller's global gate mask. Events outside it are
    /// suppressed regardless of analyzer interest.
    pub fn set_global_mask(&mut self, mask: EventMask) {
        self.global_mask = mask;
        self.recompute_mask();
    }

    /// The union of active analyzer interests, gated by the global mask —
    /// the set of kinds that will actually generate events.
    pub fn effective_mask(&self) -> EventMask {
        self.effective_mask
    }

    /// Recomputes the effective mask and rebuilds the per-kind dispatch
    /// table. Called on every registry mutation; `emit` only reads.
    fn recompute_mask(&mut self) {
        let mut m = EventMask::NONE;
        for slot in self.slots.iter().filter(|s| s.active) {
            m |= slot.mask;
        }
        self.effective_mask = m.intersect(self.global_mask);
        for (kind, table) in EventKind::ALL.iter().zip(self.dispatch.iter_mut()) {
            table.clear();
            for (idx, slot) in self.slots.iter().enumerate() {
                if slot.active && slot.mask.contains(*kind) {
                    table.push(idx as u32);
                }
            }
        }
    }

    /// Builds an event stamped with this node's identity and the given
    /// wall-clock time. (The caller — the simulated kernel — converts true
    /// time to wall time via the node clock before calling.)
    pub fn make_event(&mut self, wall: SimTime, cpu: u16, payload: EventPayload) -> Event {
        let seq = self.next_seq;
        self.next_seq += 1;
        Event {
            seq,
            node: self.node,
            cpu,
            wall,
            payload,
        }
    }

    /// Emits an event through the instrumentation point: dispatches it to
    /// every active, interested analyzer and returns the total CPU cost
    /// plus any buffer-full notifications.
    ///
    /// Also maintains the pid→group table from `ProcessCreate` /
    /// `ProcessExit` events (needed by group-id predicates).
    pub fn emit(&mut self, event: &Event) -> EmitResult {
        // Bookkeeping reads are free: they model state the kernel already
        // maintains.
        match event.payload {
            EventPayload::ProcessCreate { pid, gid, .. } => {
                self.pid_groups.insert(pid, gid);
            }
            EventPayload::ProcessExit { pid } => {
                self.pid_groups.remove(&pid);
            }
            _ => {}
        }

        let kind = event.kind();
        if !self.effective_mask.contains(kind) {
            self.stats.events_suppressed += 1;
            self.stats.total_overhead += self.cost_model.disabled_hook;
            return EmitResult {
                cost: self.cost_model.disabled_hook,
                buffer_full: Vec::new(),
            };
        }

        let mut cost = self.cost_model.enabled_hook;
        self.stats.events_generated += 1;

        // Split borrows: the dispatch table and pid table are read while
        // slots are borrowed mutably; buffer-full ids go to the reusable
        // scratch so the common path never touches the heap.
        debug_assert!(self.full_scratch.is_empty());
        let pid_groups = &self.pid_groups;
        for &idx in &self.dispatch[kind as usize] {
            let slot = &mut self.slots[idx as usize];
            cost += self.cost_model.per_delivery;
            if !slot
                .compiled
                .matches(event, |pid| pid_groups.get(&pid).copied())
            {
                self.stats.predicate_rejections += 1;
                continue;
            }
            let outcome = slot.analyzer.on_event(event);
            cost += outcome.cost;
            self.stats.events_delivered += 1;
            if outcome.buffer_full {
                self.full_scratch.push(slot.id);
            }
        }

        self.stats.total_overhead += cost;
        let buffer_full = if self.full_scratch.is_empty() {
            Vec::new()
        } else {
            // Rare path: hand the accumulated ids to the caller. The
            // scratch is left empty (and re-grows its small capacity on
            // the next buffer-full emission).
            std::mem::take(&mut self.full_scratch)
        };
        EmitResult { cost, buffer_full }
    }

    /// Monitoring counters for this node.
    pub fn stats(&self) -> &KprofStats {
        &self.stats
    }

    /// The group a live process belongs to, if known.
    pub fn group_of(&self, pid: Pid) -> Option<GroupId> {
        self.pid_groups.get(&pid).copied()
    }

    /// Borrows a registered analyzer for inspection.
    pub fn analyzer_ref(&self, id: AnalyzerId) -> Option<&dyn Analyzer> {
        self.slots
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.analyzer.as_ref())
    }

    /// Mutably borrows a registered analyzer (e.g. for the daemon to drain
    /// its buffers).
    pub fn analyzer_mut(&mut self, id: AnalyzerId) -> Option<&mut (dyn Analyzer + 'static)> {
        self.slots
            .iter_mut()
            .find(|s| s.id == id)
            .map(|s| s.analyzer.as_mut())
    }

    /// Borrows a registered analyzer downcast to its concrete type.
    pub fn analyzer_as<T: 'static>(&self, id: AnalyzerId) -> Option<&T> {
        self.analyzer_ref(id)?.as_any().downcast_ref::<T>()
    }

    /// Mutably borrows a registered analyzer downcast to its concrete type.
    pub fn analyzer_as_mut<T: 'static>(&mut self, id: AnalyzerId) -> Option<&mut T> {
        self.analyzer_mut(id)?.as_any_mut().downcast_mut::<T>()
    }

    /// Convenience downcast: borrows a [`CountingAnalyzer`].
    pub fn counting_analyzer(&self, id: AnalyzerId) -> Option<&CountingAnalyzer> {
        self.analyzer_as::<CountingAnalyzer>(id)
    }
}

impl std::fmt::Debug for Kprof {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kprof")
            .field("node", &self.node)
            .field("analyzers", &self.slots.len())
            .field("effective_mask", &self.effective_mask)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyzerOutcome, BlockReason, Interest, Predicate};
    use simcore::SimTime;

    fn wake(kprof: &mut Kprof, pid: u32) -> EmitResult {
        let ev = kprof.make_event(
            SimTime::from_micros(1),
            0,
            EventPayload::ProcessWake { pid: Pid(pid) },
        );
        kprof.emit(&ev)
    }

    #[test]
    fn no_subscribers_means_disabled_hook_cost() {
        let mut kprof = Kprof::new(NodeId(0));
        let r = wake(&mut kprof, 1);
        assert_eq!(r.cost, kprof.cost_model().disabled_hook);
        assert_eq!(kprof.stats().events_suppressed, 1);
        assert_eq!(kprof.stats().events_generated, 0);
    }

    #[test]
    fn subscriber_receives_and_costs_accrue() {
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(CountingAnalyzer::new(EventMask::SCHEDULING)));
        let r = wake(&mut kprof, 1);
        let m = kprof.cost_model();
        assert_eq!(
            r.cost,
            m.enabled_hook + m.per_delivery + SimDuration::from_nanos(60)
        );
        assert_eq!(kprof.stats().events_delivered, 1);
    }

    #[test]
    fn mask_mismatch_suppresses_event() {
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(CountingAnalyzer::new(EventMask::FILESYSTEM)));
        let r = wake(&mut kprof, 1);
        assert_eq!(r.cost, kprof.cost_model().disabled_hook);
        assert_eq!(kprof.stats().events_suppressed, 1);
    }

    #[test]
    fn global_mask_gates_everything() {
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(CountingAnalyzer::new(EventMask::ALL)));
        kprof.set_global_mask(EventMask::NONE);
        assert!(kprof.effective_mask().is_empty());
        let r = wake(&mut kprof, 1);
        assert_eq!(r.cost, kprof.cost_model().disabled_hook);
    }

    #[test]
    fn deactivate_and_reactivate() {
        let mut kprof = Kprof::new(NodeId(0));
        let id = kprof.register(Box::new(CountingAnalyzer::new(EventMask::SCHEDULING)));
        assert!(kprof.set_active(id, false));
        wake(&mut kprof, 1);
        assert_eq!(kprof.stats().events_delivered, 0);
        assert!(kprof.set_active(id, true));
        wake(&mut kprof, 1);
        assert_eq!(kprof.stats().events_delivered, 1);
        assert!(!kprof.set_active(AnalyzerId(99), true));
    }

    #[test]
    fn unregister_removes_subscription() {
        let mut kprof = Kprof::new(NodeId(0));
        let id = kprof.register(Box::new(CountingAnalyzer::new(EventMask::SCHEDULING)));
        assert!(kprof.unregister(id).is_some());
        assert!(kprof.unregister(id).is_none());
        assert!(kprof.effective_mask().is_empty());
    }

    /// Analyzer with a predicate, for registry-level predicate tests.
    struct PidFiltered {
        seen: u64,
        pid: Pid,
    }

    impl Analyzer for PidFiltered {
        fn name(&self) -> &str {
            "pid-filtered"
        }
        fn interest(&self) -> Interest {
            Interest {
                mask: EventMask::SCHEDULING,
                predicate: Predicate::new().pids([self.pid]),
            }
        }
        fn on_event(&mut self, _e: &Event) -> AnalyzerOutcome {
            self.seen += 1;
            AnalyzerOutcome::cost(SimDuration::from_nanos(50))
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn predicate_rejections_counted() {
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(PidFiltered {
            seen: 0,
            pid: Pid(42),
        }));
        wake(&mut kprof, 1); // rejected by predicate
        wake(&mut kprof, 42); // delivered
        assert_eq!(kprof.stats().predicate_rejections, 1);
        assert_eq!(kprof.stats().events_delivered, 1);
    }

    #[test]
    fn pid_group_table_tracks_create_and_exit() {
        let mut kprof = Kprof::new(NodeId(0));
        let create = kprof.make_event(
            SimTime::ZERO,
            0,
            EventPayload::ProcessCreate {
                pid: Pid(9),
                parent: None,
                gid: GroupId(4),
            },
        );
        kprof.emit(&create);
        assert_eq!(kprof.group_of(Pid(9)), Some(GroupId(4)));
        let exit = kprof.make_event(SimTime::ZERO, 0, EventPayload::ProcessExit { pid: Pid(9) });
        kprof.emit(&exit);
        assert_eq!(kprof.group_of(Pid(9)), None);
    }

    #[test]
    fn gid_predicate_uses_registry_table() {
        struct GidFiltered {
            seen: u64,
        }
        impl Analyzer for GidFiltered {
            fn name(&self) -> &str {
                "gid-filtered"
            }
            fn interest(&self) -> Interest {
                Interest {
                    mask: EventMask::SCHEDULING,
                    predicate: Predicate::new().gids([GroupId(7)]),
                }
            }
            fn on_event(&mut self, _e: &Event) -> AnalyzerOutcome {
                self.seen += 1;
                AnalyzerOutcome::default()
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(GidFiltered { seen: 0 }));
        let create = kprof.make_event(
            SimTime::ZERO,
            0,
            EventPayload::ProcessCreate {
                pid: Pid(1),
                parent: None,
                gid: GroupId(7),
            },
        );
        kprof.emit(&create);
        // ProcessCreate itself matched (pid 1 is in gid 7 by then).
        wake(&mut kprof, 1);
        assert_eq!(kprof.stats().events_delivered, 2);
        wake(&mut kprof, 2); // unknown pid -> rejected
        assert_eq!(kprof.stats().predicate_rejections, 1);
    }

    #[test]
    fn buffer_full_ids_survive_scratch_reuse() {
        struct AlwaysFull;
        impl Analyzer for AlwaysFull {
            fn name(&self) -> &str {
                "always-full"
            }
            fn interest(&self) -> Interest {
                Interest {
                    mask: EventMask::SCHEDULING,
                    predicate: Predicate::new(),
                }
            }
            fn on_event(&mut self, _e: &Event) -> AnalyzerOutcome {
                AnalyzerOutcome {
                    cost: SimDuration::ZERO,
                    buffer_full: true,
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut kprof = Kprof::new(NodeId(0));
        let quiet = kprof.register(Box::new(CountingAnalyzer::new(EventMask::SCHEDULING)));
        let full = kprof.register(Box::new(AlwaysFull));
        // The scratch is drained into each result, never carried over.
        for _ in 0..3 {
            let r = wake(&mut kprof, 1);
            assert_eq!(r.buffer_full, vec![full]);
        }
        kprof.set_active(full, false);
        let r = wake(&mut kprof, 1);
        assert!(r.buffer_full.is_empty());
        let _ = quiet;
    }

    #[test]
    fn seq_numbers_are_monotone() {
        let mut kprof = Kprof::new(NodeId(0));
        let a = kprof.make_event(SimTime::ZERO, 0, EventPayload::ProcessWake { pid: Pid(1) });
        let b = kprof.make_event(
            SimTime::ZERO,
            0,
            EventPayload::ProcessBlock {
                pid: Pid(1),
                reason: BlockReason::Sleep,
            },
        );
        assert!(b.seq > a.seq);
    }

    #[test]
    fn overhead_accumulates_in_stats() {
        let mut kprof = Kprof::new(NodeId(0));
        kprof.register(Box::new(CountingAnalyzer::new(EventMask::SCHEDULING)));
        let before = kprof.stats().total_overhead;
        let r = wake(&mut kprof, 1);
        assert_eq!(kprof.stats().total_overhead, before + r.cost);
    }
}
