//! RA-DWCS: the resource-aware dispatcher of §3.3.
//!
//! Plain DWCS decides *when* each request class is served; it is blind to
//! *where* requests go. The paper's resource-aware variant feeds SysProf's
//! per-server measurements (CPU load, queue depth, per-interaction kernel
//! time) into the dispatch decision, routing requests "to the server that
//! was lightly loaded" so the high-priority class barely degrades when a
//! back-end server becomes overloaded.

use std::collections::HashMap;

use simcore::{NodeId, SimTime};

/// A load report for one back-end server, as produced by the global
/// performance analyzer from SysProf measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerLoad {
    /// CPU busy fraction over the last report window (0.0–1.0+).
    pub cpu_utilization: f64,
    /// Mean per-interaction kernel time over the window, in microseconds
    /// (grows with kernel-buffer queueing — the paper's early-warning
    /// signal).
    pub kernel_time_us: f64,
    /// When the report was generated (subscriber wall clock).
    pub reported_at: SimTime,
}

/// Weighted load score; higher = more loaded.
fn score(load: &ServerLoad) -> f64 {
    // CPU utilization dominates; kernel queueing time breaks ties and
    // catches saturation that utilization alone under-reports.
    load.cpu_utilization + load.kernel_time_us / 10_000.0
}

/// The resource-aware dispatcher: tracks the most recent load report per
/// server and picks targets for dispatched requests.
#[derive(Debug, Default)]
pub struct RaDispatcher {
    loads: HashMap<NodeId, ServerLoad>,
    servers: Vec<NodeId>,
    rr_next: usize,
    /// Reports older than this are distrusted (stale servers look idle).
    staleness: Option<simcore::SimDuration>,
}

impl RaDispatcher {
    /// A dispatcher over the given servers, initially with no load
    /// information (falls back to round-robin).
    pub fn new(servers: Vec<NodeId>) -> Self {
        RaDispatcher {
            loads: HashMap::new(),
            servers,
            rr_next: 0,
            staleness: Some(simcore::SimDuration::from_secs(5)),
        }
    }

    /// Disables staleness checking (for tests).
    #[must_use]
    pub fn without_staleness(mut self) -> Self {
        self.staleness = None;
        self
    }

    /// Ingests a load report (from the GPA subscription).
    pub fn update_load(&mut self, server: NodeId, load: ServerLoad) {
        self.loads.insert(server, load);
    }

    /// The latest report for a server, if any.
    pub fn load_of(&self, server: NodeId) -> Option<&ServerLoad> {
        self.loads.get(&server)
    }

    /// Picks the dispatch target: the least-loaded server with a fresh
    /// report. Servers without fresh reports participate via round-robin
    /// when *no* fresh report exists at all.
    ///
    /// # Panics
    ///
    /// Panics if constructed with no servers.
    pub fn pick(&mut self, now: SimTime) -> NodeId {
        assert!(!self.servers.is_empty(), "dispatcher has no servers");
        let fresh = |l: &ServerLoad| match self.staleness {
            None => true,
            Some(max_age) => now.saturating_since(l.reported_at) <= max_age,
        };
        let best = self
            .servers
            .iter()
            .filter_map(|&s| {
                self.loads
                    .get(&s)
                    .filter(|l| fresh(l))
                    .map(|l| (s, score(l)))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"));
        match best {
            Some((server, _)) => server,
            None => {
                let s = self.servers[self.rr_next % self.servers.len()];
                self.rr_next += 1;
                s
            }
        }
    }

    /// The servers being dispatched across.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn load(cpu: f64, ktime: f64, at_ms: u64) -> ServerLoad {
        ServerLoad {
            cpu_utilization: cpu,
            kernel_time_us: ktime,
            reported_at: SimTime::from_millis(at_ms),
        }
    }

    #[test]
    fn falls_back_to_round_robin_without_reports() {
        let mut d = RaDispatcher::new(vec![NodeId(1), NodeId(2)]);
        assert_eq!(d.pick(SimTime::ZERO), NodeId(1));
        assert_eq!(d.pick(SimTime::ZERO), NodeId(2));
        assert_eq!(d.pick(SimTime::ZERO), NodeId(1));
    }

    #[test]
    fn picks_least_loaded() {
        let mut d = RaDispatcher::new(vec![NodeId(1), NodeId(2)]).without_staleness();
        d.update_load(NodeId(1), load(0.9, 100.0, 0));
        d.update_load(NodeId(2), load(0.2, 100.0, 0));
        assert_eq!(d.pick(SimTime::from_millis(1)), NodeId(2));
        // Load flips: decision flips.
        d.update_load(NodeId(2), load(0.95, 100.0, 0));
        assert_eq!(d.pick(SimTime::from_millis(2)), NodeId(1));
    }

    #[test]
    fn kernel_time_breaks_cpu_ties() {
        let mut d = RaDispatcher::new(vec![NodeId(1), NodeId(2)]).without_staleness();
        d.update_load(NodeId(1), load(0.5, 9_000.0, 0));
        d.update_load(NodeId(2), load(0.5, 100.0, 0));
        assert_eq!(d.pick(SimTime::from_millis(1)), NodeId(2));
    }

    #[test]
    fn stale_reports_are_ignored() {
        let mut d = RaDispatcher::new(vec![NodeId(1), NodeId(2)]);
        d.update_load(NodeId(1), load(0.1, 0.0, 0));
        // 10 s later the report is stale; round-robin resumes.
        let now = SimTime::from_secs(10);
        let picks: Vec<NodeId> = (0..2).map(|_| d.pick(now)).collect();
        assert_eq!(picks, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fresh_report_beats_missing_report() {
        let mut d = RaDispatcher::new(vec![NodeId(1), NodeId(2)]);
        d.update_load(NodeId(2), load(0.99, 0.0, 100));
        // Only node 2 has a fresh report; it is chosen even though loaded
        // (known-state beats unknown-state).
        assert_eq!(d.pick(SimTime::from_millis(200)), NodeId(2));
    }

    #[test]
    fn load_of_returns_latest() {
        let mut d = RaDispatcher::new(vec![NodeId(1)]);
        assert!(d.load_of(NodeId(1)).is_none());
        d.update_load(NodeId(1), load(0.4, 1.0, 5));
        d.update_load(NodeId(1), load(0.6, 2.0, 6));
        assert_eq!(d.load_of(NodeId(1)).unwrap().cpu_utilization, 0.6);
    }

    #[test]
    fn staleness_window_exact_boundary() {
        let mut d = RaDispatcher::new(vec![NodeId(1), NodeId(2)]);
        d.update_load(NodeId(1), load(0.1, 0.0, 0));
        // Exactly at the boundary (5 s) the report still counts.
        assert_eq!(d.pick(SimTime::ZERO + SimDuration::from_secs(5)), NodeId(1));
    }
}
