//! Dynamic Window-Constrained Scheduling (DWCS) and the resource-aware
//! variant (RA-DWCS) used in the SysProf paper's RUBiS evaluation (§3.3).
//!
//! DWCS (West & Schwan) schedules streams of requests where each stream
//! tolerates losing at most `x` out of every `y` consecutive deadlines —
//! the *window constraint* `x/y`. The SysProf paper applies it as a
//! black-box request scheduler for two RUBiS request classes (bidding:
//! tight constraint; comments: loose constraint), then shows that a
//! *resource-aware* DWCS consulting SysProf's per-server load measurements
//! for dispatch decisions preserves QoS under load imbalance.
//!
//! # Scheduling rules implemented
//!
//! Each stream `i` has a request period `T_i` (its requests' relative
//! deadline), original constraint `x_i/y_i`, and current constraint
//! `x'_i/y'_i`. Pairwise precedence between streams with pending requests
//! (head-request deadlines `d`):
//!
//! 1. earliest deadline first;
//! 2. equal deadlines → lowest current window-constraint value first
//!    (`x'/y'` as a rational, `0/y` being the lowest);
//! 3. equal deadlines and both constraints zero → highest `y'` first
//!    (a zero tolerance over a longer window is tighter);
//! 4. equal deadlines and equal non-zero constraints → highest `y'` first;
//! 5. all else equal → first-come-first-served.
//!
//! State updates:
//!
//! * **service** (head request dispatched before its deadline):
//!   `y' -= 1`; if `y' == x'` the window is met early and resets to `x/y`;
//! * **miss** (a queued request's deadline passes; the request is dropped
//!   — this is the "loss" DWCS trades): if `x' > 0` then `x' -= 1,
//!   y' -= 1`, resetting when `y' == x'`; if `x' == 0` the stream's
//!   constraint is **violated** (counted; window restarts).
//!
//! # Example
//!
//! ```
//! use dwcs::{Scheduler, StreamSpec, WindowConstraint};
//! use simcore::{SimDuration, SimTime};
//!
//! let mut sched = Scheduler::new();
//! let bids = sched.add_stream(StreamSpec {
//!     name: "bids".into(),
//!     period: SimDuration::from_millis(10),
//!     window: WindowConstraint { x: 1, y: 10 },
//! });
//! sched.enqueue(bids, 1001, SimTime::ZERO);
//! let (stream, req) = sched.next(SimTime::from_millis(1)).expect("pending");
//! assert_eq!((stream, req), (bids, 1001));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ra;

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Identifier of a registered stream (request class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// Loss tolerance: at most `x` missed deadlines in any window of `y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConstraint {
    /// Tolerable losses per window.
    pub x: u32,
    /// Window length in deadlines.
    pub y: u32,
}

impl WindowConstraint {
    /// The constraint as a fraction (0/y → 0.0).
    pub fn value(&self) -> f64 {
        if self.y == 0 {
            0.0
        } else {
            self.x as f64 / self.y as f64
        }
    }
}

/// Static description of a stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Human-readable class name.
    pub name: String,
    /// Relative deadline of each request.
    pub period: SimDuration,
    /// Original window constraint `x/y`.
    ///
    /// `y` must be nonzero and `x <= y`.
    pub window: WindowConstraint,
}

/// Observable per-stream counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Requests dispatched before their deadline.
    pub serviced: u64,
    /// Requests dropped because their deadline passed.
    pub missed: u64,
    /// Times a miss occurred while `x' == 0` (window constraint broken).
    pub violations: u64,
    /// Requests currently queued.
    pub queued: usize,
}

struct Queued<R> {
    req: R,
    deadline: SimTime,
    seq: u64,
}

struct Stream<R> {
    spec: StreamSpec,
    cur: WindowConstraint,
    queue: VecDeque<Queued<R>>,
    stats: StreamStats,
}

impl<R> Stream<R> {
    fn reset_window(&mut self) {
        self.cur = self.spec.window;
    }

    fn on_service(&mut self) {
        self.stats.serviced += 1;
        if self.cur.y > 0 {
            self.cur.y -= 1;
        }
        if self.cur.y == self.cur.x {
            self.reset_window();
        }
    }

    fn on_miss(&mut self) {
        self.stats.missed += 1;
        if self.cur.x > 0 {
            self.cur.x -= 1;
            self.cur.y = self.cur.y.saturating_sub(1);
            if self.cur.y == self.cur.x {
                self.reset_window();
            }
        } else {
            self.stats.violations += 1;
            self.reset_window();
        }
    }
}

/// The DWCS request scheduler, generic over the request payload.
pub struct Scheduler<R = u64> {
    streams: Vec<Stream<R>>,
    next_seq: u64,
}

impl<R> Default for Scheduler<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> Scheduler<R> {
    /// An empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            streams: Vec::new(),
            next_seq: 0,
        }
    }

    /// Registers a request class.
    ///
    /// # Panics
    ///
    /// Panics if the window constraint is malformed (`y == 0` or
    /// `x > y`).
    pub fn add_stream(&mut self, spec: StreamSpec) -> StreamId {
        assert!(
            spec.window.y > 0 && spec.window.x <= spec.window.y,
            "window constraint {}/{} is malformed",
            spec.window.x,
            spec.window.y
        );
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(Stream {
            cur: spec.window,
            spec,
            queue: VecDeque::new(),
            stats: StreamStats::default(),
        });
        id
    }

    /// Queues a request arriving at `now`; its deadline is
    /// `now + period`.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is unknown.
    pub fn enqueue(&mut self, stream: StreamId, req: R, now: SimTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = &mut self.streams[stream.0 as usize];
        let deadline = now + s.spec.period;
        s.queue.push_back(Queued { req, deadline, seq });
        s.stats.queued = s.queue.len();
    }

    /// Drops every queued request whose deadline has passed, applying the
    /// miss rule per drop. Returns the dropped requests. Called
    /// automatically by [`next`](Scheduler::next); exposed for tests and
    /// for callers that want the casualties.
    pub fn expire(&mut self, now: SimTime) -> Vec<(StreamId, R)> {
        let mut dropped = Vec::new();
        for (i, s) in self.streams.iter_mut().enumerate() {
            while let Some(head) = s.queue.front() {
                if head.deadline < now {
                    let q = s.queue.pop_front().expect("checked front");
                    s.on_miss();
                    dropped.push((StreamId(i as u32), q.req));
                } else {
                    break;
                }
            }
            s.stats.queued = s.queue.len();
        }
        dropped
    }

    /// Like [`next`](Scheduler::next) but without removing the request:
    /// expires missed requests, then returns the stream and a reference to
    /// the request that `next` would dispatch. Lets a dispatcher check
    /// resource availability before committing (head-of-line semantics).
    pub fn peek(&mut self, now: SimTime) -> Option<(StreamId, &R)> {
        self.expire(now);
        let mut best: Option<usize> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if s.queue.is_empty() {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    if Self::beats(&self.streams[i], &self.streams[b]) {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        let i = best?;
        let req = &self.streams[i].queue.front().expect("nonempty").req;
        Some((StreamId(i as u32), req))
    }

    /// Picks and removes the highest-precedence pending request, after
    /// expiring missed ones. Returns `None` when nothing is queued.
    pub fn next(&mut self, now: SimTime) -> Option<(StreamId, R)> {
        self.expire(now);
        let mut best: Option<usize> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if s.queue.is_empty() {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    if Self::beats(&self.streams[i], &self.streams[b]) {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        let i = best?;
        let s = &mut self.streams[i];
        let q = s.queue.pop_front().expect("nonempty");
        s.on_service();
        s.stats.queued = s.queue.len();
        Some((StreamId(i as u32), q.req))
    }

    /// The DWCS pairwise precedence: does `a` beat `b`?
    fn beats(a: &Stream<R>, b: &Stream<R>) -> bool {
        let (ha, hb) = (
            a.queue.front().expect("a pending"),
            b.queue.front().expect("b pending"),
        );
        // 1. EDF.
        if ha.deadline != hb.deadline {
            return ha.deadline < hb.deadline;
        }
        // 2. Lowest current window-constraint value.
        let (wa, wb) = (a.cur.value(), b.cur.value());
        if wa != wb {
            return wa < wb;
        }
        // 3./4. Equal constraints: highest window denominator (tighter).
        if a.cur.y != b.cur.y {
            return a.cur.y > b.cur.y;
        }
        // 5. FCFS.
        ha.seq < hb.seq
    }

    /// A stream's counters.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is unknown.
    pub fn stats(&self, stream: StreamId) -> StreamStats {
        let s = &self.streams[stream.0 as usize];
        let mut st = s.stats;
        st.queued = s.queue.len();
        st
    }

    /// The stream's current (dynamic) window constraint.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is unknown.
    pub fn current_window(&self, stream: StreamId) -> WindowConstraint {
        self.streams[stream.0 as usize].cur
    }

    /// Total requests queued across streams.
    pub fn pending(&self) -> usize {
        self.streams.iter().map(|s| s.queue.len()).sum()
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec(name: &str, period_ms: u64, x: u32, y: u32) -> StreamSpec {
        StreamSpec {
            name: name.into(),
            period: SimDuration::from_millis(period_ms),
            window: WindowConstraint { x, y },
        }
    }

    #[test]
    fn edf_orders_across_streams() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let fast = s.add_stream(spec("fast", 5, 1, 2));
        let slow = s.add_stream(spec("slow", 50, 1, 2));
        s.enqueue(slow, 1, SimTime::ZERO);
        s.enqueue(fast, 2, SimTime::ZERO);
        // fast's head deadline (5ms) beats slow's (50ms).
        assert_eq!(s.next(SimTime::ZERO), Some((fast, 2)));
        assert_eq!(s.next(SimTime::ZERO), Some((slow, 1)));
        assert_eq!(s.next(SimTime::ZERO), None);
    }

    #[test]
    fn equal_deadlines_tighter_window_first() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let tight = s.add_stream(spec("tight", 10, 0, 5)); // no losses allowed
        let loose = s.add_stream(spec("loose", 10, 4, 5));
        s.enqueue(loose, 1, SimTime::ZERO);
        s.enqueue(tight, 2, SimTime::ZERO);
        assert_eq!(s.next(SimTime::ZERO), Some((tight, 2)));
    }

    #[test]
    fn fcfs_breaks_full_ties() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = s.add_stream(spec("a", 10, 1, 2));
        let b = s.add_stream(spec("b", 10, 1, 2));
        s.enqueue(b, 1, SimTime::ZERO);
        s.enqueue(a, 2, SimTime::ZERO);
        // Same deadline, same constraint: b enqueued first.
        assert_eq!(s.next(SimTime::ZERO), Some((b, 1)));
    }

    #[test]
    fn misses_drop_requests_and_count() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let st = s.add_stream(spec("s", 10, 1, 3));
        s.enqueue(st, 1, SimTime::ZERO); // deadline 10ms
        s.enqueue(st, 2, SimTime::from_millis(100)); // deadline 110ms
        let got = s.next(SimTime::from_millis(100));
        assert_eq!(got, Some((st, 2)), "expired head was dropped");
        let stats = s.stats(st);
        assert_eq!(stats.missed, 1);
        assert_eq!(stats.serviced, 1);
        assert_eq!(stats.violations, 0);
    }

    #[test]
    fn violation_when_zero_tolerance_misses() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let st = s.add_stream(spec("s", 10, 0, 3));
        s.enqueue(st, 1, SimTime::ZERO);
        let dropped = s.expire(SimTime::from_secs(1));
        assert_eq!(dropped.len(), 1);
        assert_eq!(s.stats(st).violations, 1);
    }

    #[test]
    fn window_resets_after_y_services() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let st = s.add_stream(spec("s", 10, 1, 3));
        assert_eq!(s.current_window(st), WindowConstraint { x: 1, y: 3 });
        for i in 0..2 {
            s.enqueue(st, i, SimTime::ZERO);
            s.next(SimTime::ZERO);
        }
        // After two services: y' went 3 -> 2 -> 1 == x' -> reset to 1/3.
        assert_eq!(s.current_window(st), WindowConstraint { x: 1, y: 3 });
    }

    #[test]
    fn miss_consumes_tolerance() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let st = s.add_stream(spec("s", 10, 2, 5));
        s.enqueue(st, 1, SimTime::ZERO);
        s.expire(SimTime::from_secs(1));
        // One miss: 2/5 -> 1/4.
        assert_eq!(s.current_window(st), WindowConstraint { x: 1, y: 4 });
        s.enqueue(st, 2, SimTime::from_secs(2));
        s.expire(SimTime::from_secs(10));
        // Second miss: 1/4 -> 0/3.
        assert_eq!(s.current_window(st), WindowConstraint { x: 0, y: 3 });
        assert_eq!(s.stats(st).violations, 0);
    }

    #[test]
    fn constraint_tightens_priority_after_misses() {
        // After losing its tolerance, a stream must win ties it previously
        // lost.
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = s.add_stream(spec("a", 10, 2, 4));
        let b = s.add_stream(spec("b", 10, 1, 4));
        // Make `a` miss twice: 2/4 -> 1/3 -> 0/2.
        s.enqueue(a, 0, SimTime::ZERO);
        s.expire(SimTime::from_millis(50));
        s.enqueue(a, 0, SimTime::from_millis(60));
        s.expire(SimTime::from_millis(200));
        assert_eq!(s.current_window(a).x, 0);
        // Now equal-deadline requests: `a` (0/2) beats `b` (1/4).
        let t = SimTime::from_millis(300);
        s.enqueue(a, 1, t);
        s.enqueue(b, 2, t);
        assert_eq!(s.next(t), Some((a, 1)));
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_window_rejected() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.add_stream(spec("bad", 10, 5, 3));
    }

    #[test]
    fn pending_counts() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = s.add_stream(spec("a", 10, 1, 2));
        s.enqueue(a, 1, SimTime::ZERO);
        s.enqueue(a, 2, SimTime::ZERO);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.stats(a).queued, 2);
        s.next(SimTime::ZERO);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn peek_matches_next_without_consuming() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = s.add_stream(spec("a", 10, 1, 2));
        let b = s.add_stream(spec("b", 50, 1, 2));
        s.enqueue(b, 1, SimTime::ZERO);
        s.enqueue(a, 2, SimTime::ZERO);
        let peeked = s.peek(SimTime::ZERO).map(|(st, r)| (st, *r));
        assert_eq!(peeked, Some((a, 2)));
        assert_eq!(s.pending(), 2, "peek consumed nothing");
        assert_eq!(s.next(SimTime::ZERO), Some((a, 2)), "peek agreed with next");
    }

    #[test]
    fn peek_expires_like_next() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = s.add_stream(spec("a", 10, 1, 3));
        s.enqueue(a, 1, SimTime::ZERO);
        assert!(s.peek(SimTime::from_secs(1)).is_none(), "expired on peek");
        assert_eq!(s.stats(a).missed, 1);
    }

    #[test]
    fn feasible_load_has_no_violations() {
        // A schedulable workload (service always immediate) never violates
        // any stream's window constraint, no matter the mix.
        let mut s: Scheduler<u32> = Scheduler::new();
        let tight = s.add_stream(spec("tight", 10, 0, 10));
        let loose = s.add_stream(spec("loose", 20, 2, 4));
        let mut now = SimTime::ZERO;
        for i in 0..500 {
            now += SimDuration::from_millis(2);
            let st = if i % 2 == 0 { tight } else { loose };
            s.enqueue(st, i, now);
            // Immediate service: always before the deadline.
            assert!(s.next(now).is_some());
        }
        assert_eq!(s.stats(tight).violations, 0);
        assert_eq!(s.stats(loose).violations, 0);
        assert_eq!(s.stats(tight).missed, 0);
        assert_eq!(s.stats(loose).missed, 0);
    }

    #[test]
    fn overload_losses_respect_relative_tolerance() {
        // Under systematic overload with equal deadlines, the tighter
        // stream (0/y) must lose proportionally less than the loose one
        // (DWCS's whole point).
        let mut s: Scheduler<u32> = Scheduler::new();
        let tight = s.add_stream(spec("tight", 40, 0, 5));
        let loose = s.add_stream(spec("loose", 40, 4, 5));
        let mut now = SimTime::ZERO;
        for i in 0..400 {
            now += SimDuration::from_millis(10);
            s.enqueue(tight, i, now);
            s.enqueue(loose, i, now);
            // Capacity for only one dispatch per arrival pair.
            s.next(now);
        }
        // Drain expiries.
        s.expire(now + SimDuration::from_secs(10));
        let t = s.stats(tight);
        let l = s.stats(loose);
        assert!(
            t.serviced > l.serviced,
            "tight serviced {} vs loose {}",
            t.serviced,
            l.serviced
        );
        assert!(
            t.missed < l.missed,
            "tight missed {} vs loose {}",
            t.missed,
            l.missed
        );
    }

    proptest! {
        /// Conservation: every enqueued request is eventually serviced or
        /// missed, never duplicated or lost.
        #[test]
        fn prop_conservation(arrivals in proptest::collection::vec((0u64..1000, 0u8..2), 1..200)) {
            let mut s: Scheduler<usize> = Scheduler::new();
            let a = s.add_stream(spec("a", 50, 1, 3));
            let b = s.add_stream(spec("b", 20, 0, 4));
            let streams = [a, b];
            let mut sorted = arrivals.clone();
            sorted.sort_by_key(|(t, _)| *t);
            for (i, (t, which)) in sorted.iter().enumerate() {
                s.enqueue(streams[*which as usize], i, SimTime::from_millis(*t));
            }
            // Drain at a point far in the future: everything expires or
            // gets serviced.
            let mut serviced = 0u64;
            let drain_at = SimTime::from_millis(2000);
            while s.next(drain_at).is_some() {
                serviced += 1;
            }
            let total = s.stats(a).serviced + s.stats(a).missed
                + s.stats(b).serviced + s.stats(b).missed;
            prop_assert_eq!(total, sorted.len() as u64);
            prop_assert_eq!(serviced, s.stats(a).serviced + s.stats(b).serviced);
            prop_assert_eq!(s.pending(), 0);
        }

        /// The current window constraint always satisfies x' <= y' and
        /// y' <= y.
        #[test]
        fn prop_window_invariant(ops in proptest::collection::vec(any::<bool>(), 1..100)) {
            let mut s: Scheduler<u32> = Scheduler::new();
            let st = s.add_stream(spec("s", 10, 2, 7));
            let mut now = SimTime::ZERO;
            for service in ops {
                now += SimDuration::from_millis(1);
                s.enqueue(st, 0, now);
                if service {
                    s.next(now);
                } else {
                    now += SimDuration::from_millis(100);
                    s.expire(now);
                }
                let w = s.current_window(st);
                prop_assert!(w.x <= w.y, "x'={} y'={}", w.x, w.y);
                prop_assert!(w.y <= 7);
                prop_assert!(w.y >= 1);
            }
        }
    }
}
