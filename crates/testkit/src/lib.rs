//! Reusable chaos-test harness for the SysProf stack.
//!
//! Runs a deployed [`SysProf`] world under a [`FaultPlan`] and checks the
//! reliability invariants the dissemination protocol promises:
//!
//! * **exactly-once** — no interaction record is delivered to the GPA
//!   twice, no matter how much the network duplicates or retransmits,
//! * **in-order** — per-subscription sequence numbers observed by the GPA
//!   are strictly increasing,
//! * **convergence** — once the network heals and retransmits drain, no
//!   stream is left with an open gap or buffered out-of-order batches,
//! * **determinism** — the same seed and fault plan produce a
//!   byte-identical [`chaos_report`] on every run.
//!
//! The harness is intentionally thin: scenarios build their own worlds
//! and workloads, then call [`check_invariants`] and compare
//! [`chaos_report`] strings across same-seed runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use simnet::{FaultPlan, LinkFaults};
use simos::World;
use sysprof::{Gpa, SysProf};

/// A [`FaultPlan`] that drops each packet on every link with probability
/// `loss` — the simplest useful chaos configuration.
pub fn uniform_loss(loss: f64) -> FaultPlan {
    FaultPlan::default().with_default_link(LinkFaults::lossy(loss))
}

/// Renders a deterministic, human-readable digest of everything the run
/// produced: per-node kernel counters, per-daemon dissemination counters,
/// injected-fault totals, and the GPA's view of the world. Two runs from
/// the same seed must produce byte-identical reports; any divergence is a
/// determinism bug.
pub fn chaos_report(world: &World, sysprof: &SysProf) -> String {
    let mut out = String::new();
    out.push_str(&format!("sim_now_us={}\n", world.now().as_micros()));

    let mut monitored: Vec<_> = sysprof.monitored().to_vec();
    monitored.sort();
    for node in 0..world.node_count() {
        let node = simcore::NodeId(node as u32);
        let s = world.node_stats(node);
        out.push_str(&format!(
            "node[{}] tx={} rx={} pkts_in={} pkts_out={} ring_drops={} \
             socket_drops={} crash_drops={}\n",
            node.0,
            s.bytes_sent,
            s.bytes_received,
            s.packets_in,
            s.packets_out,
            s.ring_drops,
            s.socket_drops,
            s.crash_drops,
        ));
    }
    for &node in &monitored {
        if let Some(d) = sysprof.daemon_stats(node) {
            out.push_str(&format!("daemon[{}] {:?}\n", node.0, d));
        }
    }
    out.push_str(&format!("faults {:?}\n", world.network().fault_stats()));

    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    out.push_str(&format!(
        "gpa interactions={} decode_failures={} {:?}\n",
        gpa.interaction_count(),
        gpa.decode_failures(),
        gpa.gpa_stats(),
    ));
    // Per-subscription stream positions, keyed by (sorted) source endpoint.
    let mut last: BTreeMap<_, (u64, u64)> = BTreeMap::new();
    for &(src, seq) in gpa.delivery_log() {
        let e = last.entry(src).or_insert((0, 0));
        e.0 = seq;
        e.1 += 1;
    }
    for (src, (seq, count)) in &last {
        out.push_str(&format!(
            "stream[{:?}] last_seq={} delivered={}\n",
            src, seq, count
        ));
    }
    out
}

/// Asserts no interaction record reached the GPA twice. Records are keyed
/// by everything that identifies a measurement (node, flow, class, pid,
/// start/end timestamps); the dissemination layer may retransmit batches,
/// but the reassembly layer must deduplicate them. Returns the number of
/// distinct records checked.
pub fn assert_no_duplicate_interactions(gpa: &Gpa) -> usize {
    let mut keys: Vec<String> = gpa
        .interactions()
        .iter()
        .map(|r| {
            format!(
                "{:?}|{:?}|{:?}|{}|{}|{}",
                r.node, r.flow, r.class_port, r.pid, r.start_us, r.end_us
            )
        })
        .collect();
    keys.sort();
    for w in keys.windows(2) {
        assert_ne!(
            w[0], w[1],
            "duplicate interaction record delivered: {}",
            w[0]
        );
    }
    keys.len()
}

/// Asserts the GPA's delivery log is strictly monotonic per source
/// endpoint: sequence `n` is never delivered after `m >= n` from the same
/// subscription stream.
pub fn assert_monotonic_delivery(gpa: &Gpa) {
    let mut last: BTreeMap<_, u64> = BTreeMap::new();
    for &(src, seq) in gpa.delivery_log() {
        let prev = last.insert(src, seq).unwrap_or(0);
        assert!(
            seq > prev,
            "stream {:?} delivered seq {} after {}",
            src,
            seq,
            prev
        );
    }
}

/// Asserts every subscription stream has fully converged: no open gaps
/// and nothing buffered out of order. Call after the fault window has
/// closed and retransmits have had time to drain.
pub fn assert_streams_converged(gpa: &Gpa) {
    assert!(
        gpa.streams_converged(),
        "GPA streams did not converge: {:?}",
        gpa.gpa_stats()
    );
}

/// Runs every delivery invariant in one call; returns the number of
/// distinct interaction records seen, for scenario-level assertions.
pub fn check_invariants(gpa: &Gpa) -> usize {
    assert_monotonic_delivery(gpa);
    assert_streams_converged(gpa);
    assert_no_duplicate_interactions(gpa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{NodeId, SimDuration, SimTime};
    use simnet::{LinkSpec, Port};
    use simos::programs::{EchoServer, OneShotSender};
    use simos::WorldBuilder;
    use sysprof::MonitorConfig;

    fn run(seed: u64) -> String {
        let mut world = WorldBuilder::new(seed)
            .node("client")
            .node("server")
            .node("gpa")
            .full_mesh(LinkSpec::gigabit_lan())
            .faults(uniform_loss(0.02))
            .build()
            .unwrap();
        let sysprof = SysProf::deploy(
            &mut world,
            &[NodeId(1)],
            NodeId(2),
            MonitorConfig::default(),
        );
        world.spawn(
            NodeId(1),
            "echo",
            Box::new(EchoServer::new(
                Port(80),
                256,
                SimDuration::from_micros(100),
            )),
        );
        world.spawn(
            NodeId(0),
            "client",
            Box::new(OneShotSender::new(NodeId(1), Port(80), 100_000)),
        );
        world.run_until(SimTime::from_secs(2));

        let gpa = sysprof.gpa();
        check_invariants(&gpa.borrow());
        chaos_report(&world, &sysprof)
    }

    #[test]
    fn smoke_report_is_deterministic_under_loss() {
        let a = run(7);
        assert!(a.contains("faults"), "report has a fault section:\n{a}");
        assert_eq!(a, run(7), "same seed, same report");
    }

    #[test]
    fn uniform_loss_plan_perturbs() {
        assert!(uniform_loss(0.05).perturbs_network());
        assert!(!FaultPlan::default().perturbs_network());
    }
}
