//! Reusable chaos-test harness for the SysProf stack.
//!
//! Runs a deployed [`SysProf`] world under a [`FaultPlan`] and checks the
//! reliability invariants the dissemination protocol promises:
//!
//! * **exactly-once** — no interaction record is delivered to the GPA
//!   twice, no matter how much the network duplicates or retransmits,
//! * **in-order** — per-subscription sequence numbers observed by the GPA
//!   are strictly increasing,
//! * **convergence** — once the network heals and retransmits drain, no
//!   stream is left with an open gap or buffered out-of-order batches,
//! * **determinism** — the same seed and fault plan produce a
//!   byte-identical [`chaos_report`] on every run.
//!
//! The harness is intentionally thin: scenarios build their own worlds
//! and workloads, then call [`check_invariants`] and compare
//! [`chaos_report`] strings across same-seed runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use simnet::{FaultPlan, LinkFaults};
use simos::World;
use sysprof::{Gpa, SysProf};

/// A [`FaultPlan`] that drops each packet on every link with probability
/// `loss` — the simplest useful chaos configuration.
pub fn uniform_loss(loss: f64) -> FaultPlan {
    FaultPlan::default().with_default_link(LinkFaults::lossy(loss))
}

/// The standard chaos matrix every scenario must survive: a clean
/// network, mild uniform loss, and a nasty mix of loss + duplication +
/// reordering + jitter on every link. Used by
/// [`scenario_matrix!`](crate::scenario_matrix) and runnable directly.
pub fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    let mix = LinkFaults {
        loss: 0.02,
        duplicate: 0.02,
        reorder: 0.05,
        jitter: simcore::SimDuration::from_micros(200),
        reorder_delay: simcore::SimDuration::from_micros(500),
    };
    vec![
        ("clean", FaultPlan::default()),
        ("loss1pct", uniform_loss(0.01)),
        ("chaos-mix", FaultPlan::default().with_default_link(mix)),
    ]
}

/// Renders a deterministic, human-readable digest of everything the run
/// produced: per-node kernel counters, per-daemon dissemination counters,
/// injected-fault totals, and the GPA's view of the world. Two runs from
/// the same seed must produce byte-identical reports; any divergence is a
/// determinism bug.
pub fn chaos_report(world: &World, sysprof: &SysProf) -> String {
    let mut out = String::new();
    out.push_str(&format!("sim_now_us={}\n", world.now().as_micros()));

    let mut monitored: Vec<_> = sysprof.monitored().to_vec();
    monitored.sort();
    for node in 0..world.node_count() {
        let node = simcore::NodeId(node as u32);
        let s = world.node_stats(node);
        out.push_str(&format!(
            "node[{}] tx={} rx={} pkts_in={} pkts_out={} ring_drops={} \
             socket_drops={} crash_drops={}\n",
            node.0,
            s.bytes_sent,
            s.bytes_received,
            s.packets_in,
            s.packets_out,
            s.ring_drops,
            s.socket_drops,
            s.crash_drops,
        ));
    }
    for &node in &monitored {
        if let Some(d) = sysprof.daemon_stats(node) {
            out.push_str(&format!("daemon[{}] {:?}\n", node.0, d));
        }
    }
    // Only the *perturbation* counters go into the report. The traffic
    // counters (packets_offered / delivered_copies) count every transmit
    // once an injector is installed, so they would make a no-injector run
    // differ from an installed-but-empty plan — which must stay
    // bit-identical. `balances()` folds them in order-independently: it
    // holds trivially (0=0) with no injector and exactly with one.
    let f = world.network().fault_stats();
    out.push_str(&format!(
        "faults losses={} partition_drops={} duplicates={} reorders={} jittered={} balanced={}\n",
        f.injected_losses,
        f.partition_drops,
        f.duplicates,
        f.reorders,
        f.jittered,
        f.balances(),
    ));

    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    out.push_str(&format!(
        "gpa interactions={} decode_failures={} {:?}\n",
        gpa.interaction_count(),
        gpa.decode_failures(),
        gpa.gpa_stats(),
    ));
    // Per-subscription stream positions, keyed by (sorted) source endpoint.
    let mut last: BTreeMap<_, (u64, u64)> = BTreeMap::new();
    for &(src, seq) in gpa.delivery_log() {
        let e = last.entry(src).or_insert((0, 0));
        e.0 = seq;
        e.1 += 1;
    }
    for (src, (seq, count)) in &last {
        out.push_str(&format!(
            "stream[{:?}] last_seq={} delivered={}\n",
            src, seq, count
        ));
    }
    out
}

/// Asserts no interaction record reached the GPA twice. Records are keyed
/// by everything that identifies a measurement (node, flow, class, pid,
/// start/end timestamps); the dissemination layer may retransmit batches,
/// but the reassembly layer must deduplicate them. Returns the number of
/// distinct records checked.
pub fn assert_no_duplicate_interactions(gpa: &Gpa) -> usize {
    let mut keys: Vec<String> = gpa
        .interactions()
        .iter()
        .map(|r| {
            format!(
                "{:?}|{:?}|{:?}|{}|{}|{}",
                r.node, r.flow, r.class_port, r.pid, r.start_us, r.end_us
            )
        })
        .collect();
    keys.sort();
    for w in keys.windows(2) {
        assert_ne!(
            w[0], w[1],
            "duplicate interaction record delivered: {}",
            w[0]
        );
    }
    keys.len()
}

/// Asserts the GPA's delivery log is strictly monotonic per source
/// endpoint: sequence `n` is never delivered after `m >= n` from the same
/// subscription stream.
pub fn assert_monotonic_delivery(gpa: &Gpa) {
    let mut last: BTreeMap<_, u64> = BTreeMap::new();
    for &(src, seq) in gpa.delivery_log() {
        let prev = last.insert(src, seq).unwrap_or(0);
        assert!(
            seq > prev,
            "stream {:?} delivered seq {} after {}",
            src,
            seq,
            prev
        );
    }
}

/// Asserts every subscription stream has fully converged: no open gaps
/// and nothing buffered out of order. Call after the fault window has
/// closed and retransmits have had time to drain.
pub fn assert_streams_converged(gpa: &Gpa) {
    assert!(
        gpa.streams_converged(),
        "GPA streams did not converge: {:?}",
        gpa.gpa_stats()
    );
}

/// Runs every delivery invariant in one call; returns the number of
/// distinct interaction records seen, for scenario-level assertions.
pub fn check_invariants(gpa: &Gpa) -> usize {
    assert_monotonic_delivery(gpa);
    assert_streams_converged(gpa);
    assert_no_duplicate_interactions(gpa)
}

/// Asserts the mean end-to-end interaction time the GPA measured for one
/// tier (a `(node, class_port)` request class) stays within `budget_us`.
/// The per-tier latency budget is how scenario tests pin "this tier is
/// fast" without caring about individual samples. Panics if the GPA saw
/// no interactions for the class at all — a silent empty class would
/// vacuously pass any budget.
pub fn assert_tier_latency_budget(
    gpa: &Gpa,
    node: simcore::NodeId,
    port: simnet::Port,
    budget_us: f64,
) {
    let summary = gpa.class_summary(node, port).unwrap_or_else(|| {
        panic!(
            "no interactions measured at node {} port {}",
            node.0, port.0
        )
    });
    assert!(
        summary.mean_total_us <= budget_us,
        "tier (node {}, port {}) blew its latency budget: mean {:.1}µs > {:.1}µs over {} interactions",
        node.0,
        port.0,
        summary.mean_total_us,
        budget_us,
        summary.count
    );
}

/// Fraction of correlated paths rooted at `(node, port)` that carry at
/// least `min_children` nested downstream interactions — the GPA's
/// *path completeness* for a fan-out tier. 1.0 means every root the
/// correlator found has its full downstream story; low values mean the
/// cross-node correlation lost children (clock bounds too tight, records
/// dropped, or pairing broke). Returns `None` when no paths are rooted
/// there at all.
pub fn path_completeness(
    gpa: &Gpa,
    node: simcore::NodeId,
    port: simnet::Port,
    min_children: usize,
) -> Option<f64> {
    let paths: Vec<_> = gpa
        .correlate()
        .into_iter()
        .filter(|p| p.parent.node == node && p.parent.class_port == port)
        .collect();
    if paths.is_empty() {
        return None;
    }
    let complete = paths
        .iter()
        .filter(|p| p.children.len() >= min_children)
        .count();
    Some(complete as f64 / paths.len() as f64)
}

/// Asserts at least `min_fraction` of the paths rooted at `(node, port)`
/// carry `min_children`+ downstream interactions (see
/// [`path_completeness`]).
pub fn assert_path_completeness(
    gpa: &Gpa,
    node: simcore::NodeId,
    port: simnet::Port,
    min_children: usize,
    min_fraction: f64,
) {
    let frac = path_completeness(gpa, node, port, min_children).unwrap_or_else(|| {
        panic!(
            "no correlated paths rooted at node {} port {}",
            node.0, port.0
        )
    });
    assert!(
        frac >= min_fraction,
        "path completeness at (node {}, port {}) is {:.2}, needed {:.2} (>= {} children per path)",
        node.0,
        port.0,
        frac,
        min_fraction,
        min_children
    );
}

/// Runs a `ScenarioSpec`-shaped value across a seed × fault-plan matrix
/// and checks, for every cell:
///
/// * the dissemination invariants ([`check_invariants`]) hold,
/// * a same-seed, same-plan re-run produces a byte-identical
///   [`chaos_report`] (bit-exact replay).
///
/// Duck-typed on purpose: the macro only needs `run_under(seed, plan)`
/// returning something with `.world` and `.sysprof` fields, so `testkit`
/// never depends on the crate defining the scenario trait.
///
/// ```ignore
/// scenario_matrix!(KvStoreScenario::default(), seeds = [7, 21]);
/// ```
#[macro_export]
macro_rules! scenario_matrix {
    ($spec:expr) => {
        $crate::scenario_matrix!($spec, seeds = [7, 21]);
    };
    ($spec:expr, seeds = [$($seed:expr),+ $(,)?]) => {{
        let spec = $spec;
        for (plan_name, plan) in $crate::fault_matrix() {
            for seed in [$($seed),+] {
                let run = spec.run_under(seed, plan.clone());
                {
                    let gpa = run.sysprof.gpa();
                    $crate::check_invariants(&gpa.borrow());
                }
                let report = $crate::chaos_report(&run.world, &run.sysprof);
                let replay = spec.run_under(seed, plan.clone());
                let replay_report = $crate::chaos_report(&replay.world, &replay.sysprof);
                assert_eq!(
                    report, replay_report,
                    "scenario replay diverged (seed {seed}, plan {plan_name})"
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{NodeId, SimDuration, SimTime};
    use simnet::{LinkSpec, Port};
    use simos::programs::{EchoServer, OneShotSender};
    use simos::WorldBuilder;
    use sysprof::MonitorConfig;

    fn run(seed: u64) -> String {
        let mut world = WorldBuilder::new(seed)
            .node("client")
            .node("server")
            .node("gpa")
            .full_mesh(LinkSpec::gigabit_lan())
            .faults(uniform_loss(0.02))
            .build()
            .unwrap();
        let sysprof = SysProf::deploy(
            &mut world,
            &[NodeId(1)],
            NodeId(2),
            MonitorConfig::default(),
        );
        world.spawn(
            NodeId(1),
            "echo",
            Box::new(EchoServer::new(
                Port(80),
                256,
                SimDuration::from_micros(100),
            )),
        );
        world.spawn(
            NodeId(0),
            "client",
            Box::new(OneShotSender::new(NodeId(1), Port(80), 100_000)),
        );
        world.run_until(SimTime::from_secs(2));

        let gpa = sysprof.gpa();
        check_invariants(&gpa.borrow());
        chaos_report(&world, &sysprof)
    }

    #[test]
    fn smoke_report_is_deterministic_under_loss() {
        let a = run(7);
        assert!(a.contains("faults"), "report has a fault section:\n{a}");
        assert_eq!(a, run(7), "same seed, same report");
    }

    #[test]
    fn uniform_loss_plan_perturbs() {
        assert!(uniform_loss(0.05).perturbs_network());
        assert!(!FaultPlan::default().perturbs_network());
    }
}
