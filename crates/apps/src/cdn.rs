//! CDN/cache tier with zipfian traffic, TTL expiry, and origin fallback.
//!
//! Topology: closed-loop clients → an **edge cache** → an **origin**
//! server whose fetches pay a synchronous disk read. Hits are served
//! from the edge in microseconds; misses (cold keys and TTL-expired hot
//! keys) queue on a single ping-pong flow to the origin, with
//! same-key requests coalesced into one fetch. Zipfian popularity makes
//! the hit ratio high, but TTL expiry keeps even rank-0 keys
//! periodically falling back to the origin — so the latency
//! distribution is sharply bimodal and the tail is entirely
//! origin-bound.
//!
//! The diagnosis SysProf must produce: the **origin-bound tail** — the
//! edge's p95/p50 split plus the origin's blocked (disk) time, with
//! correlated paths proving the edge's slow requests are downstream
//! origin time rather than edge work.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use kprof::FileId;
use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkSpec, Port};
use simos::{DiskSpec, Message, NodeConfig, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::SysProf;

use crate::scenario::{
    percentile_us, scenario_monitor_config, ClientStats, Diagnosis, ScenarioRun, ScenarioSpec,
    ZipfClient,
};

/// Edge cache client-facing port.
pub const EDGE_PORT: Port = Port(6000);
/// Origin server port.
pub const ORIGIN_PORT: Port = Port(6100);

const REQ_BASE: u32 = 1_000;
const RESP_OFFSET: u32 = 100_000;
const TOK_RETRY: u64 = 0xCD9;

/// Parameters of the CDN scenario.
#[derive(Debug, Clone)]
pub struct CdnScenario {
    /// Closed-loop client nodes.
    pub clients: usize,
    /// Distinct objects.
    pub keys: usize,
    /// Zipf skew of object popularity.
    pub skew: f64,
    /// Cache TTL: a filled entry expires this long after the fill.
    pub ttl: SimDuration,
    /// Object payload bytes (edge→client and origin→edge).
    pub object_bytes: u64,
    /// Bytes the origin reads from disk per fetch.
    pub origin_read_bytes: u64,
    /// Positioning time of the origin's disk. The default models a
    /// striped/cached origin store (~1 ms) rather than the substrate's
    /// stock 8 ms SATA drive, which would saturate the single origin
    /// flow and hide TTL-driven demand behind queueing.
    pub origin_seek: SimDuration,
    /// Per-request cache-lookup compute at the edge.
    pub edge_lookup: SimDuration,
    /// How long clients keep issuing requests.
    pub duration: SimDuration,
    /// Retransmit timeout (loss tolerance).
    pub retry_after: SimDuration,
}

impl Default for CdnScenario {
    fn default() -> Self {
        CdnScenario {
            clients: 2,
            keys: 64,
            skew: 1.1,
            ttl: SimDuration::from_millis(150),
            object_bytes: 2_048,
            origin_read_bytes: 16 * 1024,
            origin_seek: SimDuration::from_millis(1),
            edge_lookup: SimDuration::from_micros(15),
            duration: SimDuration::from_secs(1),
            retry_after: SimDuration::from_millis(50),
        }
    }
}

/// Measured outcome of one CDN run.
#[derive(Debug, Clone, Serialize)]
pub struct CdnResult {
    /// Client requests completed.
    pub requests_completed: u64,
    /// Requests served straight from the edge cache.
    pub hits: u64,
    /// Requests that had to wait on an origin fetch.
    pub misses: u64,
    /// Hit fraction of all completed edge decisions.
    pub hit_ratio: f64,
    /// Misses that piggybacked on an in-flight fetch for the same key.
    pub coalesced: u64,
    /// Fetches actually sent to the origin.
    pub origin_fetches: u64,
    /// Client-observed median latency, µs.
    pub p50_us: u64,
    /// Client-observed 95th-percentile latency, µs.
    pub p95_us: u64,
    /// Retransmits (0 on a clean network).
    pub retries: u64,
}

// ---------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------

#[derive(Default)]
struct EdgeShared {
    hits: u64,
    misses: u64,
    coalesced: u64,
    origin_fetches: u64,
    retries: u64,
}

/// The edge cache: TTL'd entries, request coalescing, a single
/// ping-pong flow to the origin with a FIFO fetch queue.
struct EdgeCache {
    origin: NodeId,
    ttl: SimDuration,
    object_bytes: u64,
    lookup_cost: SimDuration,
    retry_after: SimDuration,
    sock: Option<SocketId>,
    ready: bool,
    /// key → expiry time of the cached copy.
    cache: BTreeMap<u32, SimTime>,
    /// key → clients waiting on the in-flight or queued fetch.
    waiters: BTreeMap<u32, Vec<(SocketId, u64)>>,
    fetch_queue: VecDeque<u32>,
    in_flight: Option<(u64, u32, SimTime)>, // (msg_id, key, last_tx)
    shared: Rc<RefCell<EdgeShared>>,
}

impl EdgeCache {
    fn pump(&mut self, ctx: &mut ProcCtx<'_>) {
        if !self.ready || self.in_flight.is_some() {
            return;
        }
        let Some(key) = self.fetch_queue.pop_front() else {
            return;
        };
        let sock = self.sock.expect("ready implies connected");
        let id = ctx.send(sock, 128, REQ_BASE + key);
        self.in_flight = Some((id, key, ctx.now()));
        self.shared.borrow_mut().origin_fetches += 1;
    }
}

impl Program for EdgeCache {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(EDGE_PORT);
        self.sock = Some(ctx.connect(self.origin, ORIGIN_PORT));
        ctx.sleep(self.retry_after, TOK_RETRY);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        if self.sock == Some(sock) {
            self.ready = true;
            self.pump(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if self.sock == Some(sock) {
            // Origin response: fill the cache, release every waiter.
            let done = match self.in_flight {
                Some((id, key, _)) if id == msg.msg_id => {
                    self.in_flight = None;
                    Some(key)
                }
                _ => None, // duplicate of an already-filled fetch
            };
            if let Some(key) = done {
                self.cache.insert(key, ctx.now() + self.ttl);
                for (client, req_id) in self.waiters.remove(&key).unwrap_or_default() {
                    ctx.compute(SimDuration::from_micros(5));
                    ctx.send_with_id(
                        client,
                        self.object_bytes,
                        REQ_BASE + key + RESP_OFFSET,
                        req_id,
                    );
                }
                self.pump(ctx);
            }
            return;
        }
        // Client GET: key encoded in the kind.
        if !(REQ_BASE..REQ_BASE + RESP_OFFSET).contains(&msg.kind) {
            return;
        }
        let key = msg.kind - REQ_BASE;
        ctx.compute(self.lookup_cost);
        if self.cache.get(&key).is_some_and(|&exp| ctx.now() < exp) {
            self.shared.borrow_mut().hits += 1;
            ctx.send_with_id(sock, self.object_bytes, msg.kind + RESP_OFFSET, msg.msg_id);
            return;
        }
        // Miss (cold or TTL-expired): coalesce with any fetch already
        // under way for this key.
        let waiter = (sock, msg.msg_id);
        match self.waiters.get_mut(&key) {
            Some(w) => {
                if !w.contains(&waiter) {
                    w.push(waiter);
                    let mut sh = self.shared.borrow_mut();
                    sh.misses += 1;
                    sh.coalesced += 1;
                }
            }
            None => {
                self.waiters.insert(key, vec![waiter]);
                self.fetch_queue.push_back(key);
                self.shared.borrow_mut().misses += 1;
                self.pump(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        if token != TOK_RETRY {
            return;
        }
        if let (Some(sock), Some((id, key, last))) = (self.sock, self.in_flight) {
            if ctx.now().saturating_since(last) >= self.retry_after {
                ctx.send_with_id(sock, 128, REQ_BASE + key, id);
                self.in_flight = Some((id, key, ctx.now()));
                self.shared.borrow_mut().retries += 1;
            }
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }
}

/// The origin: every fetch pays a synchronous disk read before the
/// response — the blocked time the GPA sees behind every miss.
struct OriginServer {
    read_bytes: u64,
    object_bytes: u64,
    next_token: u64,
    inflight: BTreeMap<u64, (SocketId, u64, u32)>,
}

impl Program for OriginServer {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(ORIGIN_PORT);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if !(REQ_BASE..REQ_BASE + RESP_OFFSET).contains(&msg.kind) {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        self.inflight.insert(token, (sock, msg.msg_id, msg.kind));
        let key = msg.kind - REQ_BASE;
        ctx.read_file(FileId(key as u64), self.read_bytes, token);
    }

    fn on_io_done(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        if let Some((sock, req_id, kind)) = self.inflight.remove(&token) {
            ctx.compute(SimDuration::from_micros(20));
            ctx.send_with_id(sock, self.object_bytes, kind + RESP_OFFSET, req_id);
        }
    }
}

// ---------------------------------------------------------------------
// Runner + diagnosis
// ---------------------------------------------------------------------

impl CdnScenario {
    /// The edge cache's node id (spawn order: clients, edge, origin, GPA).
    pub fn edge_node(&self) -> NodeId {
        NodeId(self.clients as u32)
    }
    /// The origin server's node id.
    pub fn origin_node(&self) -> NodeId {
        NodeId((self.clients + 1) as u32)
    }
    /// The GPA's node id.
    pub fn gpa_node(&self) -> NodeId {
        NodeId((self.clients + 2) as u32)
    }
}

impl ScenarioSpec for CdnScenario {
    type Output = CdnResult;

    fn name(&self) -> &'static str {
        "cdn"
    }

    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<CdnResult> {
        let mut builder = WorldBuilder::new(seed);
        for i in 0..self.clients {
            builder = builder.node(&format!("cdn-client{i}"));
        }
        let origin_config = NodeConfig {
            disk: DiskSpec {
                seek: self.origin_seek,
                ..DiskSpec::default()
            },
            ..NodeConfig::default()
        };
        let mut world = builder
            .node("cdn-edge")
            .node_with("cdn-origin", origin_config, simnet::ClockSpec::PERFECT)
            .node("gpa")
            .full_mesh(LinkSpec::gigabit_lan())
            .faults(faults)
            .build()
            .expect("topology");

        let sysprof = SysProf::deploy(
            &mut world,
            &[self.edge_node(), self.origin_node()],
            self.gpa_node(),
            scenario_monitor_config(),
        );

        let shared = Rc::new(RefCell::new(EdgeShared::default()));
        world.spawn(
            self.edge_node(),
            "cdn-edge",
            Box::new(EdgeCache {
                origin: self.origin_node(),
                ttl: self.ttl,
                object_bytes: self.object_bytes,
                lookup_cost: self.edge_lookup,
                retry_after: self.retry_after,
                sock: None,
                ready: false,
                cache: BTreeMap::new(),
                waiters: BTreeMap::new(),
                fetch_queue: VecDeque::new(),
                in_flight: None,
                shared: shared.clone(),
            }),
        );
        world.spawn(
            self.origin_node(),
            "cdn-origin",
            Box::new(OriginServer {
                read_bytes: self.origin_read_bytes,
                object_bytes: self.object_bytes,
                next_token: 0,
                inflight: BTreeMap::new(),
            }),
        );

        let stats = ClientStats::shared(self.keys);
        let deadline = SimTime::ZERO + self.duration;
        for c in 0..self.clients {
            world.spawn(
                NodeId(c as u32),
                &format!("cdn-client{c}"),
                Box::new(ZipfClient {
                    server: self.edge_node(),
                    port: EDGE_PORT,
                    keys: self.keys,
                    skew: self.skew,
                    req_bytes: 128,
                    kind_base: REQ_BASE,
                    resp_offset: RESP_OFFSET,
                    deadline,
                    retry_after: self.retry_after,
                    shared: stats.clone(),
                    sock: None,
                    outstanding: None,
                }),
            );
        }

        world.run_until(deadline + SimDuration::from_secs(1));

        let sh = shared.borrow();
        let mut st = stats.borrow_mut();
        let mut lat = std::mem::take(&mut st.latencies_us);
        let decided = sh.hits + sh.misses;
        let output = CdnResult {
            requests_completed: st.completed,
            hits: sh.hits,
            misses: sh.misses,
            hit_ratio: if decided > 0 {
                sh.hits as f64 / decided as f64
            } else {
                0.0
            },
            coalesced: sh.coalesced,
            origin_fetches: sh.origin_fetches,
            p50_us: percentile_us(&mut lat, 50.0),
            p95_us: percentile_us(&mut lat, 95.0),
            retries: st.retries + sh.retries,
        };
        drop(st);
        drop(sh);
        ScenarioRun {
            world,
            sysprof,
            output,
        }
    }

    fn diagnose(&self, run: &ScenarioRun<CdnResult>) -> Diagnosis {
        let gpa = run.sysprof.gpa();
        let gpa = gpa.borrow();
        let edge = gpa.class_summary(self.edge_node(), EDGE_PORT);
        let origin = gpa.class_summary(self.origin_node(), ORIGIN_PORT);
        let (edge_p50, edge_p95) = edge
            .as_ref()
            .map_or((0.0, 0.0), |s| (s.p50_total_us, s.p95_total_us));
        let origin_blocked = origin.as_ref().map_or(0.0, |s| s.mean_blocked_us);
        let origin_count = origin.as_ref().map_or(0, |s| s.count);
        // Miss paths: edge interactions with a nested origin fetch.
        let edge_node = self.edge_node();
        let paths: Vec<_> = gpa
            .correlate()
            .into_iter()
            .filter(|p| {
                p.parent.node == edge_node
                    && p.parent.class_port == EDGE_PORT
                    && !p.children.is_empty()
            })
            .collect();
        let miss_downstream_share = {
            let (total, down) = paths.iter().fold((0u64, 0u64), |(t, d), p| {
                (
                    t + p.parent.end_us.saturating_sub(p.parent.start_us),
                    d + p.downstream_us(),
                )
            });
            if total > 0 {
                100.0 * down.min(total) as f64 / total as f64
            } else {
                0.0
            }
        };
        let tail_ratio = if edge_p50 > 0.0 {
            edge_p95 / edge_p50
        } else {
            0.0
        };
        let evidence = vec![
            format!("edge: p50 {edge_p50:.0}µs, p95 {edge_p95:.0}µs (bimodal hit/miss split)"),
            format!(
                "origin: {origin_count} fetches, mean blocked {origin_blocked:.0}µs (synchronous disk)"
            ),
            format!(
                "{} edge interactions correlate to an origin fetch; {miss_downstream_share:.0}% of their latency is downstream",
                paths.len()
            ),
        ];
        Diagnosis {
            verdict: format!(
                "origin-bound tail: edge p95/p50 = {tail_ratio:.0}x, misses blocked on origin disk ({origin_blocked:.0}µs mean)"
            ),
            evidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CdnScenario {
        CdnScenario {
            duration: SimDuration::from_millis(500),
            ..CdnScenario::default()
        }
    }

    #[test]
    fn zipf_traffic_hits_and_ttl_forces_refetches() {
        let run = quick().run(7);
        let r = &run.output;
        // Closed loop: misses serialize on the origin's disk, so
        // throughput is origin-bound — ~100s of requests, not 1000s.
        assert!(
            r.requests_completed > 100,
            "requests {}",
            r.requests_completed
        );
        assert!(r.hit_ratio > 0.5, "hit ratio {} of {r:?}", r.hit_ratio);
        assert!(
            r.origin_fetches > 0 && r.misses >= r.origin_fetches,
            "{r:?}"
        );
        // A 500ms run against a 150ms TTL refetches hot keys: strictly
        // more fetches than the number of distinct keys a cold cache
        // could account for.
        let no_ttl = CdnScenario {
            ttl: SimDuration::from_secs(60),
            ..quick()
        }
        .run(7);
        assert!(
            r.origin_fetches > no_ttl.output.origin_fetches,
            "TTL expiry must force refetches: {} vs {} without expiry",
            r.origin_fetches,
            no_ttl.output.origin_fetches
        );
        assert_eq!(r.retries, 0, "clean network needs no retries");
    }

    #[test]
    fn misses_dominate_the_tail() {
        let run = quick().run(7);
        let r = &run.output;
        assert!(
            r.p95_us > 2 * r.p50_us,
            "bimodal latency: p50 {} p95 {}",
            r.p50_us,
            r.p95_us
        );
    }

    #[test]
    fn gpa_diagnoses_the_origin_bound_tail() {
        let spec = quick();
        let run = spec.run(7);
        let d = spec.diagnose(&run);
        assert!(
            d.verdict.starts_with("origin-bound tail"),
            "verdict {:?}",
            d.verdict
        );
        assert!(!d.evidence.is_empty());
    }
}
