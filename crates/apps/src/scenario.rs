//! The scenario library: one trait unifying every workload the repo can
//! throw at a deployed SysProf stack.
//!
//! A [`ScenarioSpec`] bundles three things the evaluation needs from any
//! workload, old or new:
//!
//! * **a seeded, fault-injectable run** — [`ScenarioSpec::run_under`]
//!   builds the world, deploys SysProf, drives the workload under an
//!   arbitrary [`FaultPlan`], and hands back the finished [`ScenarioRun`]
//!   (world + monitor + typed output) so tests can interrogate both the
//!   application's view and the GPA's view of the same run;
//! * **a golden diagnosis** — [`ScenarioSpec::diagnose`] renders the
//!   cross-node attribution the scenario uniquely exercises (the hot
//!   shard, the slow leaf tier, the straggler rank, the origin-bound
//!   tail) as a deterministic [`Diagnosis`], pinned by snapshot tests;
//! * **a name** — used by the chaos matrix, the benches, and reports.
//!
//! Scenario programs follow one discipline so SysProf's black-box
//! message pairing stays clean: every flow is ping-pong (at most one
//! outstanding request per connection), responses reuse the request's
//! message id via `send_with_id`, and retransmits repeat the same id so
//! duplicates are recognizable end-to-end.

use std::cell::RefCell;
use std::rc::Rc;

use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, Port};
use simos::{Message, ProcCtx, Program, SocketId, World};
use sysprof::{GpaConfig, MonitorConfig, SysProf};

/// A finished scenario run: the simulation, the deployed monitor, and
/// the scenario's own measured output. Tests read application truth from
/// `output` and the monitor's view from `sysprof.gpa()` — a diagnosis is
/// only golden when the two agree.
pub struct ScenarioRun<T> {
    /// The simulation after the run completed.
    pub world: World,
    /// The deployed SysProf stack (GPA, daemons, LPAs).
    pub sysprof: SysProf,
    /// The scenario's typed result.
    pub output: T,
}

/// A deterministic, human-readable verdict derived from the GPA.
///
/// `verdict` is the one-line attribution a golden test pins (if the
/// indicted tier/shard/rank changes, the string changes and the test
/// fails); `evidence` carries the per-component measurements behind it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnosis {
    /// One-line attribution, e.g. `"hot shard 0: 47% of shard traffic"`.
    pub verdict: String,
    /// Supporting per-component measurements, in a fixed order.
    pub evidence: Vec<String>,
}

impl std::fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.verdict)?;
        for e in &self.evidence {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

/// A workload scenario: seeded, fault-injectable, self-diagnosing.
pub trait ScenarioSpec {
    /// The scenario's typed result (serializable so report formats are
    /// pinned by golden snapshots).
    type Output: Serialize + std::fmt::Debug;

    /// Stable scenario name (bench ids, chaos-matrix labels).
    fn name(&self) -> &'static str;

    /// Builds the world, deploys SysProf, runs the workload to its
    /// deadline under `faults`, and returns the finished run. Same seed
    /// and plan must replay bit-identically.
    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<Self::Output>;

    /// Renders the GPA's attribution for this run.
    fn diagnose(&self, run: &ScenarioRun<Self::Output>) -> Diagnosis;

    /// [`run_under`](ScenarioSpec::run_under) with no faults.
    fn run(&self, seed: u64) -> ScenarioRun<Self::Output> {
        self.run_under(seed, FaultPlan::default())
    }
}

/// The monitor configuration scenarios deploy with: delivery logging on,
/// so the testkit's in-order/exactly-once invariants can audit the run.
pub(crate) fn scenario_monitor_config() -> MonitorConfig {
    MonitorConfig {
        gpa: GpaConfig {
            log_deliveries: true,
            ..GpaConfig::default()
        },
        ..MonitorConfig::default()
    }
}

/// The `p`-th percentile of an unsorted sample of microsecond latencies
/// (nearest-rank). Returns 0 for an empty sample.
pub(crate) fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

// ---------------------------------------------------------------------
// Shared closed-loop client
// ---------------------------------------------------------------------

/// Counters shared between every [`ZipfClient`] of one scenario and the
/// runner that reads them after the run.
#[derive(Default)]
pub(crate) struct ClientStats {
    /// Requests completed (response matched the outstanding request).
    pub completed: u64,
    /// Retransmits issued after the retry timeout expired.
    pub retries: u64,
    /// Per-request latency samples, first-send to matching response, µs.
    pub latencies_us: Vec<u64>,
    /// Completions per key rank (index = zipf rank, 0 = hottest).
    pub per_key: Vec<u64>,
}

impl ClientStats {
    pub(crate) fn shared(keys: usize) -> Rc<RefCell<ClientStats>> {
        Rc::new(RefCell::new(ClientStats {
            per_key: vec![0; keys],
            ..ClientStats::default()
        }))
    }
}

pub(crate) struct Pending {
    msg_id: u64,
    kind: u32,
    key: usize,
    first_tx: SimTime,
    last_tx: SimTime,
}

const TOK_RETRY: u64 = 0xC11E;

/// A closed-loop client drawing zipf-distributed keys: one outstanding
/// request at a time, the key encoded in the message `kind`
/// (`kind_base + key`), responses matched by message id. A watchdog
/// retransmits the outstanding request (same id, so duplicates stay
/// recognizable) when the network eats it — the loop survives loss.
pub(crate) struct ZipfClient {
    pub server: NodeId,
    pub port: Port,
    pub keys: usize,
    pub skew: f64,
    pub req_bytes: u64,
    pub kind_base: u32,
    pub resp_offset: u32,
    pub deadline: SimTime,
    pub retry_after: SimDuration,
    pub shared: Rc<RefCell<ClientStats>>,
    pub sock: Option<SocketId>,
    pub outstanding: Option<Pending>,
}

impl ZipfClient {
    fn issue(&mut self, ctx: &mut ProcCtx<'_>) {
        let Some(sock) = self.sock else { return };
        let key = ctx.rng().zipf(self.keys, self.skew);
        let kind = self.kind_base + key as u32;
        let msg_id = ctx.send(sock, self.req_bytes, kind);
        self.outstanding = Some(Pending {
            msg_id,
            kind,
            key,
            first_tx: ctx.now(),
            last_tx: ctx.now(),
        });
    }
}

impl Program for ZipfClient {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.server, self.port);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        self.sock = Some(sock);
        self.issue(ctx);
        ctx.sleep(self.retry_after, TOK_RETRY);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, _sock: SocketId, msg: Message) {
        let Some(p) = &self.outstanding else { return };
        if msg.msg_id != p.msg_id || msg.kind != p.kind + self.resp_offset {
            return; // stale duplicate of an already-completed request
        }
        {
            let mut sh = self.shared.borrow_mut();
            sh.completed += 1;
            sh.latencies_us
                .push(ctx.now().saturating_since(p.first_tx).as_micros());
            sh.per_key[p.key] += 1;
        }
        self.outstanding = None;
        if ctx.now() >= self.deadline {
            ctx.exit();
        } else {
            self.issue(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        if token != TOK_RETRY {
            return;
        }
        if let (Some(sock), Some(p)) = (self.sock, self.outstanding.as_mut()) {
            if ctx.now().saturating_since(p.last_tx) >= self.retry_after {
                ctx.send_with_id(sock, self.req_bytes, p.kind, p.msg_id);
                p.last_tx = ctx.now();
                self.shared.borrow_mut().retries += 1;
            }
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut v = vec![10, 20, 30, 40, 50];
        assert_eq!(percentile_us(&mut v, 50.0), 30);
        assert_eq!(percentile_us(&mut v, 95.0), 50);
        assert_eq!(percentile_us(&mut v, 100.0), 50);
        assert_eq!(percentile_us(&mut [], 50.0), 0);
    }

    #[test]
    fn diagnosis_renders_deterministically() {
        let d = Diagnosis {
            verdict: "hot shard 0".into(),
            evidence: vec!["a".into(), "b".into()],
        };
        assert_eq!(format!("{d}"), "hot shard 0\n  - a\n  - b\n");
    }
}
