//! Ring allreduce collective with an injectable straggler.
//!
//! `R` ranks form a ring; every iteration moves `2(R-1)` chunks around
//! it (the reduce-scatter + allgather phases of ring allreduce). Each
//! rank sends its chunk for step `s` to the next rank, which reduces it
//! (user-level compute), acknowledges on the same flow, and only then
//! does the sender advance — the collective is globally synchronous, so
//! a single slow rank gates every step for everyone.
//!
//! The straggler is injectable two ways: a **compute straggler** via
//! [`AllreduceScenario::straggler_multiplier`] (that rank's reduce takes
//! longer), or a **network straggler** via the fault plan (jitter/loss
//! on one ring link; the per-step retransmit keeps the ring live).
//!
//! The diagnosis SysProf must produce: the straggler **rank** — the ring
//! node whose responder-side user time dominates — from GPA class
//! summaries alone.

use std::cell::RefCell;
use std::rc::Rc;

use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkSpec, Port};
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::SysProf;

use crate::scenario::{scenario_monitor_config, Diagnosis, ScenarioRun, ScenarioSpec};

/// The ring port every rank listens on.
pub const RING_PORT: Port = Port(9000);

const KIND_CHUNK_BASE: u32 = 10_000;
const RESP_OFFSET: u32 = 1_000_000;
const TOK_RETRY: u64 = 0xA11;

/// Parameters of the allreduce scenario.
#[derive(Debug, Clone)]
pub struct AllreduceScenario {
    /// Ranks in the ring.
    pub ranks: usize,
    /// Allreduce iterations to run back to back.
    pub iterations: usize,
    /// Bytes per chunk (one ring hop's payload).
    pub chunk_bytes: u64,
    /// Baseline reduce compute per received chunk.
    pub reduce_compute: SimDuration,
    /// The compute-straggler rank.
    pub straggler: usize,
    /// Compute multiplier applied to the straggler's reduce.
    pub straggler_multiplier: f64,
    /// Per-chunk retransmit timeout (loss tolerance).
    pub retry_after: SimDuration,
    /// Wall-clock cap on the run (the collective normally finishes far
    /// earlier; the cap bounds hostile-network runs).
    pub deadline: SimDuration,
}

impl Default for AllreduceScenario {
    fn default() -> Self {
        AllreduceScenario {
            ranks: 4,
            iterations: 8,
            chunk_bytes: 16 * 1024,
            reduce_compute: SimDuration::from_micros(40),
            straggler: 2,
            straggler_multiplier: 6.0,
            retry_after: SimDuration::from_millis(20),
            deadline: SimDuration::from_secs(4),
        }
    }
}

impl AllreduceScenario {
    /// Ring steps per iteration: reduce-scatter + allgather.
    pub fn steps_per_iteration(&self) -> usize {
        2 * (self.ranks - 1)
    }

    fn total_steps(&self) -> u64 {
        (self.iterations * self.steps_per_iteration()) as u64
    }

    /// Node id of rank `r` (ranks occupy nodes 0..ranks, GPA last).
    pub fn rank_node(&self, r: usize) -> NodeId {
        NodeId(r as u32)
    }

    /// The GPA's node id.
    pub fn gpa_node(&self) -> NodeId {
        NodeId(self.ranks as u32)
    }
}

/// Measured outcome of one allreduce run.
#[derive(Debug, Clone, Serialize)]
pub struct AllreduceResult {
    /// Iterations every rank completed (equals the configured count on a
    /// healthy run; lower if the deadline cut a hostile run short).
    pub iterations_completed: u64,
    /// Chunks received and reduced, per rank.
    pub chunks_reduced: Vec<u64>,
    /// Wall time when the last rank finished, µs (0 if unfinished).
    pub finished_at_us: u64,
    /// Mean wall time per completed iteration, µs.
    pub mean_iteration_us: u64,
    /// Chunk retransmits across all ranks (0 on a clean network).
    pub retries: u64,
}

// ---------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------

#[derive(Default)]
struct RingShared {
    chunks_reduced: Vec<u64>,
    finished_at_us: Vec<Option<u64>>,
    retries: u64,
}

/// One rank: sends chunks clockwise, reduces chunks from the previous
/// rank, acknowledges each. The send window is one chunk: step `s+1`
/// goes out only after step `s` is acknowledged *and* the chunk for
/// step `s` arrived from the previous rank (the data dependence of ring
/// allreduce).
struct RingRank {
    rank: usize,
    next: NodeId,
    reduce: SimDuration,
    chunk_bytes: u64,
    total_steps: u64,
    retry_after: SimDuration,
    sock: Option<SocketId>,
    ready: bool,
    send_step: u64,
    recv_step: u64,
    in_flight: Option<(u64, u64, SimTime)>, // (msg_id, step, last_tx)
    shared: Rc<RefCell<RingShared>>,
}

impl RingRank {
    fn try_send(&mut self, ctx: &mut ProcCtx<'_>) {
        if !self.ready
            || self.in_flight.is_some()
            || self.send_step >= self.total_steps
            || self.recv_step < self.send_step
        {
            return;
        }
        let sock = self.sock.expect("ready implies connected");
        let step = self.send_step;
        let id = ctx.send(sock, self.chunk_bytes, KIND_CHUNK_BASE + step as u32);
        self.in_flight = Some((id, step, ctx.now()));
        self.send_step += 1;
    }

    fn maybe_finish(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.send_step == self.total_steps
            && self.recv_step == self.total_steps
            && self.in_flight.is_none()
        {
            let mut sh = self.shared.borrow_mut();
            if sh.finished_at_us[self.rank].is_none() {
                sh.finished_at_us[self.rank] =
                    Some(ctx.now().saturating_since(SimTime::ZERO).as_micros());
            }
        }
    }
}

impl Program for RingRank {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(RING_PORT);
        self.sock = Some(ctx.connect(self.next, RING_PORT));
        ctx.sleep(self.retry_after, TOK_RETRY);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        if self.sock == Some(sock) {
            self.ready = true;
            self.try_send(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if self.sock == Some(sock) {
            // ACK from the next rank for our in-flight chunk.
            if let Some((id, step, _)) = self.in_flight {
                if msg.msg_id == id && msg.kind == KIND_CHUNK_BASE + step as u32 + RESP_OFFSET {
                    self.in_flight = None;
                    self.try_send(ctx);
                    self.maybe_finish(ctx);
                }
            }
            return;
        }
        // Chunk from the previous rank on the inbound ring flow.
        if !(KIND_CHUNK_BASE..KIND_CHUNK_BASE + RESP_OFFSET).contains(&msg.kind) {
            return;
        }
        let step = (msg.kind - KIND_CHUNK_BASE) as u64;
        if step == self.recv_step {
            // New chunk: reduce (the straggler's inflated compute lands
            // here, as responder-side user time), then acknowledge.
            ctx.compute(self.reduce);
            self.shared.borrow_mut().chunks_reduced[self.rank] += 1;
            ctx.send_with_id(sock, 64, msg.kind + RESP_OFFSET, msg.msg_id);
            self.recv_step += 1;
            self.try_send(ctx);
            self.maybe_finish(ctx);
        } else if step < self.recv_step {
            // Duplicate (network or retransmit): re-acknowledge without
            // recomputing, so the sender can advance.
            ctx.send_with_id(sock, 64, msg.kind + RESP_OFFSET, msg.msg_id);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        if token != TOK_RETRY {
            return;
        }
        if let (Some(sock), Some((id, step, last))) = (self.sock, self.in_flight) {
            if ctx.now().saturating_since(last) >= self.retry_after {
                ctx.send_with_id(sock, self.chunk_bytes, KIND_CHUNK_BASE + step as u32, id);
                self.in_flight = Some((id, step, ctx.now()));
                self.shared.borrow_mut().retries += 1;
            }
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }
}

// ---------------------------------------------------------------------
// Runner + diagnosis
// ---------------------------------------------------------------------

impl ScenarioSpec for AllreduceScenario {
    type Output = AllreduceResult;

    fn name(&self) -> &'static str {
        "allreduce"
    }

    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<AllreduceResult> {
        let mut builder = WorldBuilder::new(seed);
        for r in 0..self.ranks {
            builder = builder.node(&format!("rank{r}"));
        }
        let mut world = builder
            .node("gpa")
            .full_mesh(LinkSpec::gigabit_lan())
            .faults(faults)
            .build()
            .expect("topology");

        let monitored: Vec<NodeId> = (0..self.ranks).map(|r| self.rank_node(r)).collect();
        let sysprof = SysProf::deploy(
            &mut world,
            &monitored,
            self.gpa_node(),
            scenario_monitor_config(),
        );

        let shared = Rc::new(RefCell::new(RingShared {
            chunks_reduced: vec![0; self.ranks],
            finished_at_us: vec![None; self.ranks],
            retries: 0,
        }));
        for r in 0..self.ranks {
            let reduce = if r == self.straggler {
                SimDuration::from_secs_f64(
                    self.reduce_compute.as_secs_f64() * self.straggler_multiplier,
                )
            } else {
                self.reduce_compute
            };
            world.spawn(
                self.rank_node(r),
                &format!("rank{r}"),
                Box::new(RingRank {
                    rank: r,
                    next: self.rank_node((r + 1) % self.ranks),
                    reduce,
                    chunk_bytes: self.chunk_bytes,
                    total_steps: self.total_steps(),
                    retry_after: self.retry_after,
                    sock: None,
                    ready: false,
                    send_step: 0,
                    recv_step: 0,
                    in_flight: None,
                    shared: shared.clone(),
                }),
            );
        }

        world.run_until(SimTime::ZERO + self.deadline);

        let sh = shared.borrow();
        let spi = self.steps_per_iteration() as u64;
        let iterations_completed = sh
            .chunks_reduced
            .iter()
            .map(|&c| c / spi)
            .min()
            .unwrap_or(0);
        let finished_at_us = if sh.finished_at_us.iter().all(|f| f.is_some()) {
            sh.finished_at_us
                .iter()
                .map(|f| f.expect("all some"))
                .max()
                .unwrap_or(0)
        } else {
            0
        };
        let output = AllreduceResult {
            iterations_completed,
            chunks_reduced: sh.chunks_reduced.clone(),
            finished_at_us,
            mean_iteration_us: if iterations_completed > 0 && finished_at_us > 0 {
                finished_at_us / iterations_completed
            } else {
                0
            },
            retries: sh.retries,
        };
        drop(sh);
        ScenarioRun {
            world,
            sysprof,
            output,
        }
    }

    fn diagnose(&self, run: &ScenarioRun<AllreduceResult>) -> Diagnosis {
        let gpa = run.sysprof.gpa();
        let gpa = gpa.borrow();
        let user_us: Vec<f64> = (0..self.ranks)
            .map(|r| {
                gpa.class_summary(self.rank_node(r), RING_PORT)
                    .map_or(0.0, |s| s.mean_user_us)
            })
            .collect();
        let straggler = user_us
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite").then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("at least one rank");
        let mut sorted = user_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        let evidence: Vec<String> = (0..self.ranks)
            .map(|r| {
                let s = gpa.class_summary(self.rank_node(r), RING_PORT);
                format!(
                    "rank {r}: mean user {:.0}µs, p95 total {:.0}µs, {} chunk interactions",
                    s.as_ref().map_or(0.0, |s| s.mean_user_us),
                    s.as_ref().map_or(0.0, |s| s.p95_total_us),
                    s.as_ref().map_or(0, |s| s.count),
                )
            })
            .collect();
        Diagnosis {
            verdict: format!(
                "straggler rank {straggler}: mean reduce {:.0}µs vs ring median {:.0}µs",
                user_us[straggler], median
            ),
            evidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AllreduceScenario {
        AllreduceScenario {
            iterations: 4,
            ..AllreduceScenario::default()
        }
    }

    #[test]
    fn collective_completes_every_iteration() {
        let run = quick().run(7);
        let r = &run.output;
        assert_eq!(r.iterations_completed, 4, "{r:?}");
        assert!(r.finished_at_us > 0, "{r:?}");
        assert_eq!(r.retries, 0, "clean network needs no retries");
        let spi = quick().steps_per_iteration() as u64;
        for (rank, &c) in r.chunks_reduced.iter().enumerate() {
            assert_eq!(c, 4 * spi, "rank {rank} reduced {c}");
        }
    }

    #[test]
    fn gpa_indicts_the_compute_straggler() {
        let spec = quick();
        let run = spec.run(7);
        let d = spec.diagnose(&run);
        assert!(
            d.verdict
                .starts_with(&format!("straggler rank {}", spec.straggler)),
            "verdict {:?}",
            d.verdict
        );
    }

    #[test]
    fn straggler_slows_the_whole_ring() {
        let uniform = AllreduceScenario {
            straggler_multiplier: 1.0,
            ..quick()
        }
        .run(7);
        let skewed = quick().run(7);
        assert!(
            skewed.output.finished_at_us > uniform.output.finished_at_us,
            "skewed {} vs uniform {}",
            skewed.output.finished_at_us,
            uniform.output.finished_at_us
        );
    }
}
