//! The Iperf microbenchmark (§3.1).
//!
//! "Bandwidth was measured between two nodes, first with SysProf disabled
//! and later enabling it. The measured bandwidth in the later case (~810
//! Mbps) was almost 13% less than that of the former (~930 Mbps). This
//! reduction in bandwidth was due to overhead incurred by examining
//! packets at such high speed and not due to SysProf network usage. In a
//! 100 Mbps LAN, this overhead came down to 3%."
//!
//! The model: a bulk TCP-like stream saturating the link. On the paper's
//! hardware (2.8 GHz P4, no NIC offloads, Linux 2.4), gigabit receive
//! processing consumes most of the CPU, so per-packet monitoring cost
//! pushes the receiver past saturation: the NIC ring overflows and
//! goodput falls. At 100 Mbps the CPU has ~10× headroom and the same
//! per-packet cost is absorbed.

use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkSpec, Port};
use simos::{Message, ProcCtx, Program, SocketId, World, WorldBuilder};
use sysprof::{MonitorConfig, SysProf};

use crate::scenario::{Diagnosis, ScenarioRun, ScenarioSpec};

const KIND_DATA: u32 = 10;
const KIND_ACK: u32 = 11;

/// The Iperf receiver: consumes data messages and acks each one (the
/// app-level stand-in for TCP's receive-window flow control — the sender
/// can never overrun a CPU-bound receiver, losses never occur, and
/// goodput settles at whatever the receiver can drain).
pub struct IperfServer {
    port: Port,
}

impl IperfServer {
    /// A receiver listening on `port`.
    pub fn new(port: Port) -> Self {
        IperfServer { port }
    }
}

impl Program for IperfServer {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(self.port);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if msg.kind == KIND_DATA {
            ctx.send_with_id(sock, 1, KIND_ACK, msg.msg_id);
        }
    }
}

/// The Iperf sender: keeps a window of unacknowledged data messages in
/// flight for the duration of the test.
pub struct IperfClient {
    remote: NodeId,
    port: Port,
    msg_bytes: u64,
    window: usize,
    duration: SimDuration,
    sock: Option<SocketId>,
    started_at: Option<SimTime>,
    inflight: usize,
}

impl IperfClient {
    /// A sender streaming `msg_bytes`-sized messages to `remote:port` with
    /// `window` unacknowledged messages in flight, for `duration`.
    pub fn new(
        remote: NodeId,
        port: Port,
        msg_bytes: u64,
        window: usize,
        duration: SimDuration,
    ) -> Self {
        IperfClient {
            remote,
            port,
            msg_bytes,
            window,
            duration,
            sock: None,
            started_at: None,
            inflight: 0,
        }
    }
}

impl IperfClient {
    fn fill_window(&mut self, ctx: &mut ProcCtx<'_>) {
        let Some(sock) = self.sock else { return };
        let started = self.started_at.expect("set on connect");
        if ctx.now().saturating_since(started) >= self.duration {
            if self.inflight == 0 {
                ctx.exit();
            }
            return;
        }
        while self.inflight < self.window {
            ctx.send(sock, self.msg_bytes, KIND_DATA);
            self.inflight += 1;
        }
    }
}

impl Program for IperfClient {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.remote, self.port);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        self.sock = Some(sock);
        self.started_at = Some(ctx.now());
        self.fill_window(ctx);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, _sock: SocketId, msg: Message) {
        if msg.kind == KIND_ACK {
            self.inflight = self.inflight.saturating_sub(1);
            self.fill_window(ctx);
        }
    }
}

/// Result of one Iperf run.
#[derive(Debug, Clone, Serialize)]
pub struct IperfResult {
    /// Application-level goodput measured at the receiver, Mbps.
    pub goodput_mbps: f64,
    /// Receiver CPU utilization over the run.
    pub receiver_cpu_utilization: f64,
    /// Packets dropped at the receiver NIC ring.
    pub ring_drops: u64,
    /// Monitoring CPU overhead fraction on the receiver.
    pub overhead_fraction: f64,
    /// Monitoring bytes SysProf itself sent from the receiver (to show
    /// the bandwidth loss is *not* network usage).
    pub monitor_bytes_sent: u64,
}

/// Runs Iperf for `duration` over `link`, with SysProf deployed when
/// `monitored`. Node 0 sends to node 1; node 2 hosts the GPA over a
/// separate link so monitoring traffic does not share the measured link.
pub fn run_iperf(link: LinkSpec, monitored: bool, duration: SimDuration, seed: u64) -> IperfResult {
    run_iperf_inner(link, monitored, duration, seed, FaultPlan::default()).2
}

fn run_iperf_inner(
    link: LinkSpec,
    monitored: bool,
    duration: SimDuration,
    seed: u64,
    faults: FaultPlan,
) -> (World, Option<SysProf>, IperfResult) {
    let mut world = WorldBuilder::new(seed)
        .node("sender")
        .node("receiver")
        .node("gpa")
        .link(NodeId(0), NodeId(1), link)
        // Monitoring plane on its own gigabit links.
        .link(NodeId(0), NodeId(2), LinkSpec::gigabit_lan())
        .link(NodeId(1), NodeId(2), LinkSpec::gigabit_lan())
        .faults(faults)
        .build()
        .expect("static topology is valid");

    let sysprof = monitored.then(|| {
        SysProf::deploy(
            &mut world,
            &[NodeId(0), NodeId(1)],
            NodeId(2),
            MonitorConfig::default(),
        )
    });

    world.spawn(
        NodeId(1),
        "iperf-server",
        Box::new(IperfServer::new(Port(5001))),
    );
    world.spawn(
        NodeId(0),
        "iperf-client",
        Box::new(IperfClient::new(
            NodeId(1),
            Port(5001),
            64 * 1024,
            8,
            duration,
        )),
    );

    world.run_until(SimTime::ZERO + duration + SimDuration::from_secs(1));

    let stats = world.node_stats(NodeId(1));
    let goodput_mbps = stats.bytes_received as f64 * 8.0 / duration.as_secs_f64() / 1e6;
    let monitor_bytes_sent = sysprof
        .as_ref()
        .and_then(|s| s.daemon_stats(NodeId(1)))
        .map(|d| d.bytes_sent)
        .unwrap_or(0);

    let result = IperfResult {
        goodput_mbps,
        receiver_cpu_utilization: stats.cpu.busy().as_secs_f64() / world.now().as_secs_f64(),
        ring_drops: stats.ring_drops,
        overhead_fraction: stats.cpu.monitor.as_secs_f64() / world.now().as_secs_f64(),
        monitor_bytes_sent,
    };
    (world, sysprof, result)
}

/// The Iperf microbenchmark as a [`ScenarioSpec`]: a monitored bulk
/// stream whose diagnosis shows the monitoring tax is receiver CPU, not
/// network usage.
#[derive(Debug, Clone)]
pub struct IperfScenario {
    /// The measured link.
    pub link: LinkSpec,
    /// Stream duration.
    pub duration: SimDuration,
}

impl Default for IperfScenario {
    fn default() -> Self {
        IperfScenario {
            link: LinkSpec::gigabit_lan(),
            duration: SimDuration::from_secs(2),
        }
    }
}

impl ScenarioSpec for IperfScenario {
    type Output = IperfResult;

    fn name(&self) -> &'static str {
        "iperf"
    }

    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<IperfResult> {
        let (world, sysprof, output) =
            run_iperf_inner(self.link, true, self.duration, seed, faults);
        ScenarioRun {
            world,
            sysprof: sysprof.expect("scenario runs monitored"),
            output,
        }
    }

    fn diagnose(&self, run: &ScenarioRun<IperfResult>) -> Diagnosis {
        let r = &run.output;
        let verdict = if r.ring_drops > 0 {
            format!(
                "receiver CPU-bound: {:.0}% utilized, {} ring drops — bandwidth lost to packet examination, not monitor traffic",
                100.0 * r.receiver_cpu_utilization,
                r.ring_drops
            )
        } else {
            format!(
                "receiver has headroom: {:.0}% utilized, monitoring tax absorbed",
                100.0 * r.receiver_cpu_utilization
            )
        };
        Diagnosis {
            verdict,
            evidence: vec![
                format!("goodput {:.0} Mbps", r.goodput_mbps),
                format!(
                    "monitoring CPU fraction {:.1}%",
                    100.0 * r.overhead_fraction
                ),
                format!("monitor bytes sent from receiver: {}", r.monitor_bytes_sent),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_baseline_approaches_line_rate() {
        let r = run_iperf(LinkSpec::gigabit_lan(), false, SimDuration::from_secs(2), 7);
        assert!(r.goodput_mbps > 850.0, "baseline {} Mbps", r.goodput_mbps);
        assert!(r.goodput_mbps < 1000.0);
    }

    #[test]
    fn monitoring_reduces_gigabit_goodput() {
        let off = run_iperf(LinkSpec::gigabit_lan(), false, SimDuration::from_secs(2), 7);
        let on = run_iperf(LinkSpec::gigabit_lan(), true, SimDuration::from_secs(2), 7);
        assert!(
            on.goodput_mbps < off.goodput_mbps,
            "monitored {} vs baseline {}",
            on.goodput_mbps,
            off.goodput_mbps
        );
    }

    #[test]
    fn fast_ethernet_overhead_is_small() {
        let off = run_iperf(
            LinkSpec::fast_ethernet(),
            false,
            SimDuration::from_secs(2),
            7,
        );
        let on = run_iperf(
            LinkSpec::fast_ethernet(),
            true,
            SimDuration::from_secs(2),
            7,
        );
        let loss = (off.goodput_mbps - on.goodput_mbps) / off.goodput_mbps;
        assert!(loss < 0.05, "100 Mbps loss {loss}");
    }
}
