//! The linpack microbenchmark (§3.1).
//!
//! "We measured the overhead in its default configuration by running it
//! with linpack … There was no change in the mflops measured by linpack
//! due to SysProf. One of the reasons is that SysProf generates more
//! activities when there are network interactions, so linpack was
//! probably not a very good benchmark."
//!
//! The model: a pure compute loop that performs a fixed amount of
//! floating-point "work". Reported MFLOPS = (nominal flops for the work)
//! / (wall time the work actually took), so any CPU stolen by monitoring
//! lowers the score. With no network traffic, almost no events fire.

use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkSpec};
use simos::programs::ComputeLoop;
use simos::{World, WorldBuilder};
use sysprof::{MonitorConfig, SysProf};

use crate::scenario::{Diagnosis, ScenarioRun, ScenarioSpec};

/// Result of one linpack run.
#[derive(Debug, Clone, Serialize)]
pub struct LinpackResult {
    /// Measured MFLOPS.
    pub mflops: f64,
    /// Wall time the benchmark took.
    pub elapsed: SimDuration,
    /// Monitoring CPU overhead as a fraction of elapsed time.
    pub overhead_fraction: f64,
    /// Kprof events generated on the benchmark node.
    pub events_generated: u64,
}

/// Nominal flops the modeled benchmark performs per second of pure
/// compute on the reference (2.8 GHz P4-class) node. One flop ≈ one
/// useful cycle here; the absolute value only anchors the MFLOPS unit.
const FLOPS_PER_COMPUTE_SEC: f64 = 1_400e6;

/// Runs linpack on a two-node 1 Gbps testbed (matching the paper's
/// setup), with SysProf deployed when `monitored`.
pub fn run_linpack(monitored: bool, seed: u64) -> LinpackResult {
    run_linpack_inner(monitored, seed, FaultPlan::default()).2
}

fn run_linpack_inner(
    monitored: bool,
    seed: u64,
    faults: FaultPlan,
) -> (World, Option<SysProf>, LinpackResult) {
    let mut world = WorldBuilder::new(seed)
        .node("bench")
        .node("peer")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .faults(faults)
        .build()
        .expect("static topology is valid");

    let sysprof = monitored.then(|| {
        SysProf::deploy(
            &mut world,
            &[NodeId(0), NodeId(1)],
            NodeId(2),
            MonitorConfig::default(),
        )
    });

    // 10 s of compute in 10 ms slices.
    let compute = SimDuration::from_secs(10);
    let pid = world.spawn(
        NodeId(0),
        "linpack",
        Box::new(ComputeLoop::new(compute, SimDuration::from_millis(10))),
    );

    world.run_until(SimTime::from_secs(60));
    assert!(world.process_exited(NodeId(0), pid), "benchmark finished");

    let (user, _kernel) = world.process_times(NodeId(0), pid).expect("process exists");
    // The benchmark times its own solve phase: work done / wall time from
    // start to the moment it exits.
    let elapsed = world.process_exit_time(NodeId(0), pid).expect("exited") - SimTime::ZERO;
    let flops = user.as_secs_f64() * FLOPS_PER_COMPUTE_SEC;
    let mflops = flops / elapsed.as_secs_f64() / 1e6;

    let stats = world.node_stats(NodeId(0));
    let result = LinpackResult {
        mflops,
        elapsed,
        overhead_fraction: stats.cpu.monitor.as_secs_f64() / elapsed.as_secs_f64(),
        events_generated: world.kprof(NodeId(0)).stats().events_generated,
    };
    (world, sysprof, result)
}

/// Linpack as a [`ScenarioSpec`]: the compute-only control whose
/// diagnosis must find *nothing* network-attributable.
#[derive(Debug, Clone, Default)]
pub struct LinpackScenario;

impl ScenarioSpec for LinpackScenario {
    type Output = LinpackResult;

    fn name(&self) -> &'static str {
        "linpack"
    }

    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<LinpackResult> {
        let (world, sysprof, output) = run_linpack_inner(true, seed, faults);
        ScenarioRun {
            world,
            sysprof: sysprof.expect("scenario runs monitored"),
            output,
        }
    }

    fn diagnose(&self, run: &ScenarioRun<LinpackResult>) -> Diagnosis {
        let r = &run.output;
        Diagnosis {
            verdict: format!(
                "compute-bound, monitoring-neutral: {:.0} MFLOPS, monitor tax {:.2}%",
                r.mflops,
                100.0 * r.overhead_fraction
            ),
            evidence: vec![
                format!("elapsed {:.2}s", r.elapsed.as_secs_f64()),
                format!("{} kprof events on the bench node", r.events_generated),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitoring_does_not_change_mflops_measurably() {
        let off = run_linpack(false, 42);
        let on = run_linpack(true, 42);
        let rel = (off.mflops - on.mflops).abs() / off.mflops;
        // The paper: "There was no change in the mflops measured".
        assert!(
            rel < 0.005,
            "mflops changed by {:.3}% (off {:.1}, on {:.1})",
            rel * 100.0,
            off.mflops,
            on.mflops
        );
        assert!(
            on.overhead_fraction < 0.005,
            "overhead {}",
            on.overhead_fraction
        );
    }

    #[test]
    fn mflops_is_in_a_sane_range() {
        let r = run_linpack(false, 1);
        assert!(r.mflops > 500.0 && r.mflops < 1500.0, "mflops {}", r.mflops);
    }
}
