//! Application models and workload generators for the SysProf evaluation.
//!
//! Everything the paper's §3 runs against, rebuilt on the simulated
//! substrate:
//!
//! * [`linpack`] — the CPU-bound microbenchmark of §3.1 (monitoring
//!   overhead on compute-only work),
//! * [`iperf`] — the bandwidth microbenchmark of §3.1 (monitoring
//!   overhead on packet-intensive work, at 1 Gbps and 100 Mbps),
//! * [`storage`] — the shared virtual storage service of §3.2: Iozone-like
//!   clients, a user-level NFS proxy, and kernel-daemon NFS servers with
//!   synchronous disk writes (Figures 4 and 5),
//! * [`rubis`] — the multi-tier auction site of §3.3: two request classes
//!   (CPU-heavy *bid*, network-heavy *comment*), open-loop Poisson
//!   clients, a DWCS or RA-DWCS request dispatcher, and a mid-run load
//!   imbalance (Figures 6 and 7).
//!
//! On top of those, the **scenario library** adds distributed-behavior
//! workloads whose bottleneck only a cross-node correlator can name:
//!
//! * [`kvstore`] — a sharded key-value store with zipfian hot-key skew:
//!   the GPA must surface the hot shard,
//! * [`fanout`] — a microservice fan-out chain (one user request fans
//!   into dozens of RPCs across three tiers): the GPA must indict the
//!   slow leaf behind the tail,
//! * [`allreduce`] — a ring allreduce collective with an injectable
//!   compute straggler: the GPA must indict the straggler rank,
//! * [`cdn`] — a CDN/cache tier with zipfian traffic, TTL expiry, and
//!   origin fallback: the GPA must attribute the tail to origin disk.
//!
//! Every workload — legacy and new — implements [`ScenarioSpec`]: a
//! seeded, fault-injectable run plus a deterministic golden
//! [`Diagnosis`], so one chaos matrix and one bench harness cover them
//! all.
//!
//! Each module exposes a `run_*` function returning a typed result, used
//! by the examples, the integration tests, and the `figures` harness in
//! `sysprof-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allreduce;
pub mod cdn;
pub mod fanout;
pub mod iperf;
pub mod kvstore;
pub mod linpack;
pub mod rubis;
pub mod scenario;
pub mod storage;

pub use allreduce::{AllreduceResult, AllreduceScenario};
pub use cdn::{CdnResult, CdnScenario};
pub use fanout::{FanoutResult, FanoutScenario};
pub use iperf::{run_iperf, IperfResult, IperfScenario};
pub use kvstore::{KvStoreResult, KvStoreScenario};
pub use linpack::{run_linpack, LinpackResult, LinpackScenario};
pub use rubis::{run_rubis, RubisConfig, RubisResult, RubisScenario};
pub use scenario::{Diagnosis, ScenarioRun, ScenarioSpec};
pub use storage::{run_storage, StorageConfig, StorageResult, StorageScenario};
