//! Application models and workload generators for the SysProf evaluation.
//!
//! Everything the paper's §3 runs against, rebuilt on the simulated
//! substrate:
//!
//! * [`linpack`] — the CPU-bound microbenchmark of §3.1 (monitoring
//!   overhead on compute-only work),
//! * [`iperf`] — the bandwidth microbenchmark of §3.1 (monitoring
//!   overhead on packet-intensive work, at 1 Gbps and 100 Mbps),
//! * [`storage`] — the shared virtual storage service of §3.2: Iozone-like
//!   clients, a user-level NFS proxy, and kernel-daemon NFS servers with
//!   synchronous disk writes (Figures 4 and 5),
//! * [`rubis`] — the multi-tier auction site of §3.3: two request classes
//!   (CPU-heavy *bid*, network-heavy *comment*), open-loop Poisson
//!   clients, a DWCS or RA-DWCS request dispatcher, and a mid-run load
//!   imbalance (Figures 6 and 7).
//!
//! Each module exposes a `run_*` function returning a typed result, used
//! by the examples, the integration tests, and the `figures` harness in
//! `sysprof-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iperf;
pub mod linpack;
pub mod rubis;
pub mod storage;

pub use iperf::{run_iperf, IperfResult};
pub use linpack::{run_linpack, LinpackResult};
pub use rubis::{run_rubis, RubisConfig, RubisResult};
pub use storage::{run_storage, StorageConfig, StorageResult};
