//! Microservice fan-out chain with tail-latency amplification.
//!
//! Topology: closed-loop clients → a **frontend** → `M` **mid-tier**
//! services → `L` **leaf** services per mid. One user request fans into
//! `M + M·L·rounds` internal RPCs across three tiers; the frontend and
//! each mid wait for *all* of their children before responding, so the
//! end-to-end latency is gated by the slowest leaf — the classic
//! fan-out amplification where one degraded replica drags the whole
//! service's tail.
//!
//! One leaf is configured slow (compute multiplier). The diagnosis
//! SysProf must produce: indict that leaf from GPA class summaries
//! (largest responder-side user time in the leaf tier), with the
//! correlated request paths showing the frontend's latency is downstream
//! time, not local work.

use std::cell::RefCell;
use std::rc::Rc;

use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkSpec, Port};
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::SysProf;

use crate::scenario::{
    percentile_us, scenario_monitor_config, ClientStats, Diagnosis, ScenarioRun, ScenarioSpec,
    ZipfClient,
};

/// Frontend user-request port.
pub const FRONT_PORT: Port = Port(8000);
/// Mid-tier RPC port.
pub const MID_PORT: Port = Port(8100);
/// Leaf RPC port.
pub const LEAF_PORT: Port = Port(8200);

const KIND_USER: u32 = 1_000;
const KIND_MID: u32 = 2_000;
const KIND_LEAF: u32 = 3_000;
const RESP_OFFSET: u32 = 100_000;
const TOK_RETRY: u64 = 0xFA2;

/// Parameters of the fan-out scenario.
#[derive(Debug, Clone)]
pub struct FanoutScenario {
    /// Closed-loop client nodes.
    pub clients: usize,
    /// Mid-tier services.
    pub mids: usize,
    /// Leaves per mid-tier service.
    pub leaves_per_mid: usize,
    /// Sequential request rounds each mid issues to each of its leaves.
    pub rounds: usize,
    /// Baseline per-RPC compute at a leaf.
    pub leaf_service: SimDuration,
    /// Global index (mid-major order) of the slow leaf.
    pub slow_leaf: usize,
    /// Compute multiplier applied to the slow leaf.
    pub slow_multiplier: f64,
    /// How long clients keep issuing requests.
    pub duration: SimDuration,
    /// Retransmit timeout on every tier (loss tolerance).
    pub retry_after: SimDuration,
}

impl Default for FanoutScenario {
    fn default() -> Self {
        FanoutScenario {
            clients: 2,
            mids: 2,
            leaves_per_mid: 3,
            rounds: 2,
            leaf_service: SimDuration::from_micros(60),
            slow_leaf: 4,
            slow_multiplier: 8.0,
            duration: SimDuration::from_millis(800),
            retry_after: SimDuration::from_millis(30),
        }
    }
}

impl FanoutScenario {
    /// Internal RPCs triggered by one user request.
    pub fn rpcs_per_request(&self) -> usize {
        self.mids + self.mids * self.leaves_per_mid * self.rounds
    }

    fn leaf_count(&self) -> usize {
        self.mids * self.leaves_per_mid
    }
}

/// Measured outcome of one fan-out run.
#[derive(Debug, Clone, Serialize)]
pub struct FanoutResult {
    /// User requests completed across all clients.
    pub requests_completed: u64,
    /// Internal RPCs per user request (topology constant, for reports).
    pub rpcs_per_request: usize,
    /// Client-observed median latency, µs.
    pub p50_us: u64,
    /// Client-observed 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Retransmits across all tiers (0 on a clean network).
    pub retries: u64,
}

// ---------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------

/// One downstream ping-pong flow with retransmit state.
struct Downstream {
    node: NodeId,
    sock: Option<SocketId>,
    ready: bool,
    in_flight: Option<(u64, SimTime)>, // (msg_id, last_tx)
    rounds_done: usize,
}

#[derive(Default)]
struct TierShared {
    retries: u64,
}

/// The frontend: serializes user requests (one in service at a time, the
/// rest queue) and fans each into one RPC per mid.
struct Frontend {
    mids: Vec<Downstream>,
    current: Option<(SocketId, u64)>, // the user request in service
    waiting: usize,                   // mids still outstanding
    queue: std::collections::VecDeque<(SocketId, u64)>,
    merge_cost: SimDuration,
    retry_after: SimDuration,
    shared: Rc<RefCell<TierShared>>,
}

impl Frontend {
    fn start_next(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.current.is_some() || self.mids.iter().any(|m| !m.ready) {
            return;
        }
        let Some(user) = self.queue.pop_front() else {
            return;
        };
        self.current = Some(user);
        self.waiting = self.mids.len();
        for m in &mut self.mids {
            let sock = m.sock.expect("ready implies connected");
            let id = ctx.send(sock, 256, KIND_MID);
            m.in_flight = Some((id, ctx.now()));
        }
    }
}

impl Program for Frontend {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(FRONT_PORT);
        for m in &mut self.mids {
            m.sock = Some(ctx.connect(m.node, MID_PORT));
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        if let Some(m) = self.mids.iter_mut().find(|m| m.sock == Some(sock)) {
            m.ready = true;
        }
        self.start_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if let Some(m) = self.mids.iter_mut().find(|m| m.sock == Some(sock)) {
            // Mid response for the request in service?
            if msg.kind == KIND_MID + RESP_OFFSET
                && m.in_flight.map(|(id, _)| id) == Some(msg.msg_id)
            {
                m.in_flight = None;
                self.waiting -= 1;
                if self.waiting == 0 {
                    let (user_sock, user_id) = self.current.take().expect("in service");
                    ctx.compute(self.merge_cost);
                    ctx.send_with_id(user_sock, 2_048, KIND_USER + RESP_OFFSET, user_id);
                    self.start_next(ctx);
                }
            }
            return;
        }
        if msg.kind != KIND_USER {
            return;
        }
        // A client retransmit of the request already in service or queued
        // is dropped: the eventual response reuses its id.
        let user = (sock, msg.msg_id);
        if self.current == Some(user) || self.queue.contains(&user) {
            return;
        }
        self.queue.push_back(user);
        self.start_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        if token != TOK_RETRY {
            return;
        }
        let now = ctx.now();
        for m in &mut self.mids {
            if let (Some(sock), Some((id, last))) = (m.sock, m.in_flight) {
                if now.saturating_since(last) >= self.retry_after {
                    ctx.send_with_id(sock, 256, KIND_MID, id);
                    m.in_flight = Some((id, now));
                    self.shared.borrow_mut().retries += 1;
                }
            }
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }
}

/// A mid-tier service: each request fans into `rounds` sequential RPCs
/// to each of its leaves (leaves progress in parallel, rounds within a
/// leaf are serial), then a merge compute and the response.
struct MidService {
    leaves: Vec<Downstream>,
    rounds: usize,
    current: Option<(SocketId, u64)>,
    pending_start: bool,
    last_done: Option<(SocketId, u64)>,
    merge_cost: SimDuration,
    retry_after: SimDuration,
    shared: Rc<RefCell<TierShared>>,
}

impl MidService {
    fn outstanding(&self) -> usize {
        self.leaves
            .iter()
            .filter(|l| l.in_flight.is_some() || l.rounds_done < self.rounds)
            .count()
    }

    fn send_round(&mut self, ctx: &mut ProcCtx<'_>, idx: usize) {
        let l = &mut self.leaves[idx];
        let sock = l.sock.expect("ready implies connected");
        let id = ctx.send(sock, 200, KIND_LEAF);
        l.in_flight = Some((id, ctx.now()));
    }

    fn try_begin(&mut self, ctx: &mut ProcCtx<'_>) {
        if !self.pending_start || self.leaves.iter().any(|l| !l.ready) {
            return;
        }
        self.pending_start = false;
        for l in &mut self.leaves {
            l.rounds_done = 0;
        }
        for idx in 0..self.leaves.len() {
            self.send_round(ctx, idx);
        }
    }
}

impl Program for MidService {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(MID_PORT);
        for l in &mut self.leaves {
            l.sock = Some(ctx.connect(l.node, LEAF_PORT));
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        if let Some(l) = self.leaves.iter_mut().find(|l| l.sock == Some(sock)) {
            l.ready = true;
        }
        self.try_begin(ctx);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if let Some(idx) = self.leaves.iter().position(|l| l.sock == Some(sock)) {
            let matches = msg.kind == KIND_LEAF + RESP_OFFSET
                && self.leaves[idx].in_flight.map(|(id, _)| id) == Some(msg.msg_id);
            if !matches {
                return;
            }
            self.leaves[idx].in_flight = None;
            self.leaves[idx].rounds_done += 1;
            if self.leaves[idx].rounds_done < self.rounds {
                self.send_round(ctx, idx);
            } else if self.outstanding() == 0 {
                let (fe_sock, fe_id) = self.current.take().expect("in service");
                ctx.compute(self.merge_cost);
                ctx.send_with_id(fe_sock, 1_024, KIND_MID + RESP_OFFSET, fe_id);
                self.last_done = Some((fe_sock, fe_id));
            }
            return;
        }
        if msg.kind != KIND_MID {
            return;
        }
        // Frontend retransmits: replay a finished response cheaply,
        // ignore one for the request still in progress.
        if self.current == Some((sock, msg.msg_id)) {
            return;
        }
        if self.last_done == Some((sock, msg.msg_id)) {
            ctx.send_with_id(sock, 1_024, KIND_MID + RESP_OFFSET, msg.msg_id);
            return;
        }
        self.current = Some((sock, msg.msg_id));
        self.pending_start = true;
        self.try_begin(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        if token != TOK_RETRY {
            return;
        }
        let now = ctx.now();
        for l in &mut self.leaves {
            if let (Some(sock), Some((id, last))) = (l.sock, l.in_flight) {
                if now.saturating_since(last) >= self.retry_after {
                    ctx.send_with_id(sock, 200, KIND_LEAF, id);
                    l.in_flight = Some((id, now));
                    self.shared.borrow_mut().retries += 1;
                }
            }
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }
}

/// A leaf service: stateless compute-and-respond.
struct LeafService {
    service: SimDuration,
}

impl Program for LeafService {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(LEAF_PORT);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if msg.kind != KIND_LEAF {
            return;
        }
        ctx.compute(self.service);
        ctx.send_with_id(sock, 512, KIND_LEAF + RESP_OFFSET, msg.msg_id);
    }
}

// ---------------------------------------------------------------------
// Runner + diagnosis
// ---------------------------------------------------------------------

impl FanoutScenario {
    /// The frontend's node id (spawn order: clients, frontend, mids,
    /// leaves, GPA).
    pub fn frontend_node(&self) -> NodeId {
        NodeId(self.clients as u32)
    }
    /// Node id of mid-tier service `m`.
    pub fn mid_node(&self, m: usize) -> NodeId {
        NodeId((self.clients + 1 + m) as u32)
    }
    /// Node id of leaf `l` (mid-major order).
    pub fn leaf_node(&self, l: usize) -> NodeId {
        NodeId((self.clients + 1 + self.mids + l) as u32)
    }
    /// The GPA's node id.
    pub fn gpa_node(&self) -> NodeId {
        NodeId((self.clients + 1 + self.mids + self.leaf_count()) as u32)
    }
}

impl ScenarioSpec for FanoutScenario {
    type Output = FanoutResult;

    fn name(&self) -> &'static str {
        "fanout"
    }

    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<FanoutResult> {
        let mut builder = WorldBuilder::new(seed);
        for i in 0..self.clients {
            builder = builder.node(&format!("fo-client{i}"));
        }
        builder = builder.node("fo-frontend");
        for i in 0..self.mids {
            builder = builder.node(&format!("fo-mid{i}"));
        }
        for i in 0..self.leaf_count() {
            builder = builder.node(&format!("fo-leaf{i}"));
        }
        let mut world = builder
            .node("gpa")
            .full_mesh(LinkSpec::gigabit_lan())
            .faults(faults)
            .build()
            .expect("topology");

        let mut monitored = vec![self.frontend_node()];
        monitored.extend((0..self.mids).map(|m| self.mid_node(m)));
        monitored.extend((0..self.leaf_count()).map(|l| self.leaf_node(l)));
        let sysprof = SysProf::deploy(
            &mut world,
            &monitored,
            self.gpa_node(),
            scenario_monitor_config(),
        );

        let shared = Rc::new(RefCell::new(TierShared::default()));
        for l in 0..self.leaf_count() {
            let service = if l == self.slow_leaf {
                SimDuration::from_secs_f64(self.leaf_service.as_secs_f64() * self.slow_multiplier)
            } else {
                self.leaf_service
            };
            world.spawn(
                self.leaf_node(l),
                &format!("fo-leaf{l}"),
                Box::new(LeafService { service }),
            );
        }
        for m in 0..self.mids {
            let leaves = (0..self.leaves_per_mid)
                .map(|i| Downstream {
                    node: self.leaf_node(m * self.leaves_per_mid + i),
                    sock: None,
                    ready: false,
                    in_flight: None,
                    rounds_done: 0,
                })
                .collect();
            world.spawn(
                self.mid_node(m),
                &format!("fo-mid{m}"),
                Box::new(MidService {
                    leaves,
                    rounds: self.rounds,
                    current: None,
                    pending_start: false,
                    last_done: None,
                    merge_cost: SimDuration::from_micros(40),
                    retry_after: self.retry_after,
                    shared: shared.clone(),
                }),
            );
        }
        world.spawn(
            self.frontend_node(),
            "fo-frontend",
            Box::new(Frontend {
                mids: (0..self.mids)
                    .map(|m| Downstream {
                        node: self.mid_node(m),
                        sock: None,
                        ready: false,
                        in_flight: None,
                        rounds_done: 0,
                    })
                    .collect(),
                current: None,
                waiting: 0,
                queue: std::collections::VecDeque::new(),
                merge_cost: SimDuration::from_micros(50),
                retry_after: self.retry_after,
                shared: shared.clone(),
            }),
        );

        let stats = ClientStats::shared(1);
        let deadline = SimTime::ZERO + self.duration;
        for c in 0..self.clients {
            world.spawn(
                NodeId(c as u32),
                &format!("fo-client{c}"),
                Box::new(ZipfClient {
                    server: self.frontend_node(),
                    port: FRONT_PORT,
                    keys: 1, // a single "key": plain closed-loop requests
                    skew: 0.0,
                    req_bytes: 256,
                    kind_base: KIND_USER,
                    resp_offset: RESP_OFFSET,
                    deadline,
                    retry_after: self.retry_after,
                    shared: stats.clone(),
                    sock: None,
                    outstanding: None,
                }),
            );
        }

        world.run_until(deadline + SimDuration::from_secs(1));

        let mut st = stats.borrow_mut();
        let mut lat = std::mem::take(&mut st.latencies_us);
        let output = FanoutResult {
            requests_completed: st.completed,
            rpcs_per_request: self.rpcs_per_request(),
            p50_us: percentile_us(&mut lat, 50.0),
            p99_us: percentile_us(&mut lat, 99.0),
            retries: st.retries + shared.borrow().retries,
        };
        drop(st);
        ScenarioRun {
            world,
            sysprof,
            output,
        }
    }

    fn diagnose(&self, run: &ScenarioRun<FanoutResult>) -> Diagnosis {
        let gpa = run.sysprof.gpa();
        let gpa = gpa.borrow();
        // Leaf-tier user time per node, straight from GPA class summaries.
        let user_us: Vec<f64> = (0..self.leaf_count())
            .map(|l| {
                gpa.class_summary(self.leaf_node(l), LEAF_PORT)
                    .map_or(0.0, |s| s.mean_user_us)
            })
            .collect();
        let slow = user_us
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite").then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("at least one leaf");
        let mut sorted = user_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        // Correlated paths rooted at the frontend: how much of its
        // latency is downstream time at the mid tier.
        let fe = self.frontend_node();
        let paths: Vec<_> = gpa
            .correlate()
            .into_iter()
            .filter(|p| p.parent.node == fe && p.parent.class_port == FRONT_PORT)
            .collect();
        let with_children = paths.iter().filter(|p| !p.children.is_empty()).count();
        let downstream_share = {
            let (total, down) = paths.iter().fold((0u64, 0u64), |(t, d), p| {
                (
                    t + p.parent.end_us.saturating_sub(p.parent.start_us),
                    d + p.downstream_us(),
                )
            });
            if total > 0 {
                100.0 * down.min(total) as f64 / total as f64
            } else {
                0.0
            }
        };
        let mut evidence: Vec<String> = user_us
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                format!(
                    "leaf {i} (node {}): mean user {u:.0}µs",
                    self.leaf_node(i).0
                )
            })
            .collect();
        evidence.push(format!(
            "frontend paths: {with_children}/{} correlated to downstream RPCs, {downstream_share:.0}% of frontend latency is downstream",
            paths.len()
        ));
        Diagnosis {
            verdict: format!(
                "slow leaf {slow} (node {}): mean user {:.0}µs vs leaf-tier median {:.0}µs",
                self.leaf_node(slow).0,
                user_us[slow],
                median
            ),
            evidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FanoutScenario {
        FanoutScenario {
            duration: SimDuration::from_millis(400),
            ..FanoutScenario::default()
        }
    }

    #[test]
    fn requests_complete_and_tail_amplifies() {
        let run = quick().run(7);
        let r = &run.output;
        assert!(
            r.requests_completed > 50,
            "requests {}",
            r.requests_completed
        );
        assert_eq!(r.rpcs_per_request, 2 + 2 * 3 * 2);
        assert!(r.p99_us >= r.p50_us, "p50 {} p99 {}", r.p50_us, r.p99_us);
        assert_eq!(r.retries, 0, "clean network needs no retries");
    }

    #[test]
    fn gpa_indicts_the_configured_slow_leaf() {
        let spec = quick();
        let run = spec.run(7);
        let d = spec.diagnose(&run);
        assert!(
            d.verdict
                .starts_with(&format!("slow leaf {}", spec.slow_leaf)),
            "verdict {:?}",
            d.verdict
        );
    }

    #[test]
    fn slower_leaf_raises_the_tail() {
        let fast = FanoutScenario {
            slow_multiplier: 1.0,
            ..quick()
        }
        .run(7);
        let slow = quick().run(7);
        assert!(
            slow.output.p50_us > fast.output.p50_us,
            "slow {} vs uniform {}",
            slow.output.p50_us,
            fast.output.p50_us
        );
    }
}
