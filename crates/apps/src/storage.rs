//! The shared virtual storage service of §3.2 (Figures 4 and 5).
//!
//! Topology: Iozone-like clients → user-level NFS **proxy** → back-end
//! NFS **servers** (in-kernel daemons doing synchronous disk writes, per
//! NFSv2 semantics). "The back-end storage servers are hidden from the
//! client's view by a user-level proxy that interposes every request."
//!
//! SysProf monitors the proxy and one back-end; the experiment sweeps the
//! number of Iozone writer threads and reads, from the GPA:
//!
//! * Figure 4 — average time client↔proxy interactions spend at the proxy,
//!   split user vs kernel: user stays flat (the proxy does constant work
//!   per request), kernel grows (requests queue in the proxy's socket
//!   buffers as traffic rises);
//! * Figure 5 — average time proxy↔server interactions spend in the
//!   back-end's kernel: an order of magnitude above the proxy (the disk
//!   is the real bottleneck), also growing with load.

use std::collections::{HashMap, VecDeque};

use kprof::FileId;
use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkSpec, Port};
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::{MonitorConfig, SysProf};

use crate::scenario::{Diagnosis, ScenarioRun, ScenarioSpec};

/// Client→proxy and proxy→backend request port numbers.
pub const PROXY_PORT: Port = Port(2049);
/// Back-end NFS server port.
pub const BACKEND_PORT: Port = Port(2050);

const KIND_WRITE_REQ: u32 = 1;
const KIND_WRITE_RESP: u32 = 2;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Iozone writer threads per client node.
    pub threads_per_client: usize,
    /// Client nodes (the paper uses two).
    pub clients: usize,
    /// Back-end NFS servers.
    pub backends: usize,
    /// Iozone record size (bytes written per request).
    pub record_bytes: u64,
    /// Measurement duration.
    pub duration: SimDuration,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            threads_per_client: 4,
            clients: 2,
            backends: 2,
            record_bytes: 8 * 1024,
            duration: SimDuration::from_secs(20),
            seed: 1,
        }
    }
}

/// Measured outcome of one storage run.
#[derive(Debug, Clone, Serialize)]
pub struct StorageResult {
    /// Mean user-level time per client↔proxy interaction at the proxy, ms.
    pub proxy_user_ms: f64,
    /// Mean kernel-level time per client↔proxy interaction at the proxy,
    /// ms (in + out paths, dominated by socket-buffer queueing).
    pub proxy_kernel_ms: f64,
    /// Mean kernel time per proxy↔backend interaction at the measured
    /// back-end, ms.
    pub backend_kernel_ms: f64,
    /// Interactions measured at the proxy.
    pub proxy_interactions: u64,
    /// Interactions measured at the back-end.
    pub backend_interactions: u64,
    /// Requests completed by all Iozone threads.
    pub requests_completed: u64,
    /// Estimated network round-trip between client and proxy, ms (the
    /// paper reports < 0.3 ms, "insignificant").
    pub network_rtt_ms: f64,
    /// Monitoring overhead fraction on the proxy node.
    pub proxy_overhead_fraction: f64,
}

// ---------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------

/// One Iozone writer thread: a closed loop of write requests to the proxy.
struct IozoneThread {
    proxy: NodeId,
    record_bytes: u64,
    sock: Option<SocketId>,
    completed: std::rc::Rc<std::cell::Cell<u64>>,
    deadline: SimTime,
}

impl Program for IozoneThread {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.proxy, PROXY_PORT);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        self.sock = Some(sock);
        ctx.send(sock, self.record_bytes, KIND_WRITE_REQ);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, _msg: Message) {
        self.completed.set(self.completed.get() + 1);
        if ctx.now() >= self.deadline {
            ctx.exit();
            return;
        }
        // Write/re-write: immediately issue the next record.
        ctx.send(sock, self.record_bytes, KIND_WRITE_REQ);
    }
}

/// The user-level NFS proxy: interposes every request. Each client
/// connection gets its own back-end connection (the proxy interposes the
/// client's NFS mount 1:1), so flows are never multiplexed — exactly the
/// structure that lets SysProf's black-box message-pairing work cleanly.
/// Per-request processing cost is constant, which is why the proxy's
/// *user* time in Figure 4 stays flat while its kernel time grows.
struct NfsProxy {
    backends: Vec<NodeId>,
    /// client socket -> backend socket (and reverse).
    to_backend: HashMap<SocketId, SocketId>,
    to_client: HashMap<SocketId, SocketId>,
    /// Client requests queued while their backend connection establishes.
    awaiting_conn: HashMap<SocketId, VecDeque<u64>>,
    /// backend socket -> client socket, for connections in progress.
    conn_client: HashMap<SocketId, SocketId>,
    next_backend: usize,
    /// Per-request parse/validate compute at user level.
    parse_cost: SimDuration,
    /// Per-response relay compute at user level.
    relay_cost: SimDuration,
    record_bytes: u64,
}

impl NfsProxy {
    fn new(backends: Vec<NodeId>, record_bytes: u64) -> Self {
        NfsProxy {
            backends,
            to_backend: HashMap::new(),
            to_client: HashMap::new(),
            awaiting_conn: HashMap::new(),
            conn_client: HashMap::new(),
            next_backend: 0,
            parse_cost: SimDuration::from_micros(300),
            relay_cost: SimDuration::from_micros(100),
            record_bytes,
        }
    }
}

impl Program for NfsProxy {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(PROXY_PORT);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        // A backend connection is ready: flush queued client requests.
        let Some(client) = self.conn_client.remove(&sock) else {
            return;
        };
        self.to_backend.insert(client, sock);
        self.to_client.insert(sock, client);
        if let Some(queued) = self.awaiting_conn.remove(&client) {
            for _req in queued {
                ctx.compute(self.parse_cost);
                ctx.send(sock, self.record_bytes, KIND_WRITE_REQ);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if let Some(&client) = self.to_client.get(&sock) {
            // Response from a back-end: relay to the paired client.
            ctx.compute(self.relay_cost);
            ctx.send(client, msg.bytes.max(128), KIND_WRITE_RESP);
        } else if let Some(&backend) = self.to_backend.get(&sock) {
            // Known client: parse and forward on its own backend flow.
            ctx.compute(self.parse_cost);
            ctx.send(backend, msg.bytes, KIND_WRITE_REQ);
        } else if let Some(queue) = self.awaiting_conn.get_mut(&sock) {
            // Backend connection still establishing.
            queue.push_back(msg.msg_id);
        } else {
            // First request from a new client: open its backend flow.
            let b = self.backends[self.next_backend % self.backends.len()];
            self.next_backend += 1;
            let bsock = ctx.connect(b, BACKEND_PORT);
            self.conn_client.insert(bsock, sock);
            self.awaiting_conn
                .entry(sock)
                .or_default()
                .push_back(msg.msg_id);
        }
    }
}

/// A back-end NFS server: an in-kernel daemon ("the NFS server ran as
/// kernel daemon, no time was spent by the request at the user level")
/// doing a synchronous disk write per request.
struct NfsServer {
    next_token: u64,
    inflight: HashMap<u64, (SocketId, u64)>,
}

impl NfsServer {
    fn new() -> Self {
        NfsServer {
            next_token: 0,
            inflight: HashMap::new(),
        }
    }
}

impl Program for NfsServer {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(BACKEND_PORT);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        let token = self.next_token;
        self.next_token += 1;
        self.inflight.insert(token, (sock, msg.msg_id));
        // NFSv2 semantics: the write must be stable before the reply.
        ctx.write_file(FileId(msg.msg_id % 64), msg.bytes, true, token);
    }

    fn on_io_done(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        if let Some((sock, req_id)) = self.inflight.remove(&token) {
            ctx.send_with_id(sock, 128, KIND_WRITE_RESP, req_id);
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// A built storage-service world, before running: lets callers inject
/// faults, turn controller knobs, or add probes mid-scenario.
pub struct StorageWorld {
    /// The simulation.
    pub world: WorldBuilderOutput,
    /// The deployed monitor.
    pub sysprof: SysProf,
    /// The proxy node.
    pub proxy_node: NodeId,
    /// The back-end NFS server nodes.
    pub backend_nodes: Vec<NodeId>,
    /// The GPA node.
    pub gpa_node: NodeId,
    /// Requests completed by all Iozone threads (shared counter).
    pub completed: std::rc::Rc<std::cell::Cell<u64>>,
    /// When the client threads stop issuing requests.
    pub deadline: SimTime,
}

/// Alias so the struct field reads naturally.
pub type WorldBuilderOutput = simos::World;

/// Builds the §3.2 topology with SysProf deployed on the proxy and every
/// back-end, clients ready to run. Callers drive `world` themselves.
pub fn build_storage_world(config: &StorageConfig) -> StorageWorld {
    build_storage_world_under(config, FaultPlan::default())
}

/// [`build_storage_world`] with a network fault plan installed.
pub fn build_storage_world_under(config: &StorageConfig, faults: FaultPlan) -> StorageWorld {
    let mut builder = WorldBuilder::new(config.seed);
    // Node layout: clients, then proxy, then backends, then GPA.
    for i in 0..config.clients {
        builder = builder.node(&format!("client{i}"));
    }
    builder = builder.node("proxy");
    for i in 0..config.backends {
        builder = builder.node(&format!("nfs{i}"));
    }
    builder = builder.node("gpa");
    let mut world = builder
        .full_mesh(LinkSpec::gigabit_lan())
        .faults(faults)
        .build()
        .expect("topology");

    let proxy_node = NodeId(config.clients as u32);
    let backend_nodes: Vec<NodeId> = (0..config.backends)
        .map(|i| NodeId((config.clients + 1 + i) as u32))
        .collect();
    let gpa_node = NodeId((config.clients + 1 + config.backends) as u32);

    // Monitor the proxy and every back-end.
    let mut monitored = vec![proxy_node];
    monitored.extend(backend_nodes.iter().copied());
    let sysprof = SysProf::deploy(&mut world, &monitored, gpa_node, MonitorConfig::default());

    world.spawn(
        proxy_node,
        "nfs-proxy",
        Box::new(NfsProxy::new(backend_nodes.clone(), config.record_bytes)),
    );
    for &b in &backend_nodes {
        world.spawn_kernel_daemon(b, "nfsd", Box::new(NfsServer::new()));
    }

    let completed = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let deadline = SimTime::ZERO + config.duration;
    for c in 0..config.clients {
        for t in 0..config.threads_per_client {
            world.spawn(
                NodeId(c as u32),
                &format!("iozone-{c}-{t}"),
                Box::new(IozoneThread {
                    proxy: proxy_node,
                    record_bytes: config.record_bytes,
                    sock: None,
                    completed: completed.clone(),
                    deadline,
                }),
            );
        }
    }

    StorageWorld {
        world,
        sysprof,
        proxy_node,
        backend_nodes,
        gpa_node,
        completed,
        deadline,
    }
}

/// Runs the virtual-storage experiment and reads the Figure 4/5 metrics
/// from the GPA.
pub fn run_storage(config: StorageConfig) -> StorageResult {
    run_storage_inner(config, FaultPlan::default()).2
}

fn run_storage_inner(
    config: StorageConfig,
    faults: FaultPlan,
) -> (WorldBuilderOutput, SysProf, StorageResult) {
    let sw = build_storage_world_under(&config, faults);
    let StorageWorld {
        mut world,
        sysprof,
        proxy_node,
        backend_nodes,
        completed,
        deadline,
        ..
    } = sw;

    world.run_until(deadline + SimDuration::from_secs(2));

    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    let proxy_summary = gpa.class_summary(proxy_node, PROXY_PORT);
    let backend_summary = gpa.class_summary(backend_nodes[0], BACKEND_PORT);

    let (proxy_user_ms, proxy_kernel_ms, proxy_interactions) = proxy_summary
        .map(|s| {
            (
                s.mean_user_us / 1e3,
                (s.mean_kernel_in_us + s.mean_kernel_out_us) / 1e3,
                s.count,
            )
        })
        .unwrap_or((0.0, 0.0, 0));
    let (backend_kernel_ms, backend_interactions) = backend_summary
        .map(|s| ((s.mean_kernel_in_us + s.mean_kernel_out_us) / 1e3, s.count))
        .unwrap_or((0.0, 0));

    let result = StorageResult {
        proxy_user_ms,
        proxy_kernel_ms,
        backend_kernel_ms,
        proxy_interactions,
        backend_interactions,
        requests_completed: completed.get(),
        network_rtt_ms: world
            .network()
            .estimated_rtt(NodeId(0), proxy_node)
            .map(|d| d.as_millis_f64())
            .unwrap_or(0.0),
        proxy_overhead_fraction: sysprof.overhead_fraction(&world, proxy_node),
    };
    drop(gpa);
    (world, sysprof, result)
}

/// The §3.2 storage service as a [`ScenarioSpec`]: the GPA must put the
/// bottleneck behind the proxy, in the back-end's kernel (the disk).
#[derive(Debug, Clone)]
pub struct StorageScenario {
    /// The experiment parameters (the config's own `seed` is ignored;
    /// [`ScenarioSpec::run_under`]'s seed wins).
    pub config: StorageConfig,
}

impl Default for StorageScenario {
    fn default() -> Self {
        StorageScenario {
            config: StorageConfig {
                duration: SimDuration::from_secs(5),
                ..StorageConfig::default()
            },
        }
    }
}

impl ScenarioSpec for StorageScenario {
    type Output = StorageResult;

    fn name(&self) -> &'static str {
        "storage"
    }

    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<StorageResult> {
        let config = StorageConfig {
            seed,
            ..self.config.clone()
        };
        let (world, sysprof, output) = run_storage_inner(config, faults);
        ScenarioRun {
            world,
            sysprof,
            output,
        }
    }

    fn diagnose(&self, run: &ScenarioRun<StorageResult>) -> Diagnosis {
        let r = &run.output;
        let proxy_ms = r.proxy_user_ms + r.proxy_kernel_ms;
        Diagnosis {
            verdict: format!(
                "disk-bound back end: {:.1}ms kernel per interaction vs {:.1}ms at the proxy",
                r.backend_kernel_ms, proxy_ms
            ),
            evidence: vec![
                format!(
                    "proxy: user {:.2}ms (flat), kernel {:.2}ms over {} interactions",
                    r.proxy_user_ms, r.proxy_kernel_ms, r.proxy_interactions
                ),
                format!(
                    "backend: kernel {:.2}ms over {} interactions",
                    r.backend_kernel_ms, r.backend_interactions
                ),
                format!("client↔proxy rtt {:.2}ms (insignificant)", r.network_rtt_ms),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(threads: usize) -> StorageResult {
        run_storage(StorageConfig {
            threads_per_client: threads,
            duration: SimDuration::from_secs(5),
            ..StorageConfig::default()
        })
    }

    #[test]
    fn requests_flow_end_to_end() {
        let r = quick(2);
        assert!(
            r.requests_completed > 50,
            "completed {}",
            r.requests_completed
        );
        assert!(
            r.proxy_interactions > 10,
            "proxy saw {}",
            r.proxy_interactions
        );
        assert!(
            r.backend_interactions > 10,
            "backend saw {}",
            r.backend_interactions
        );
    }

    #[test]
    fn backend_dominates_proxy_by_an_order_of_magnitude() {
        let r = quick(4);
        assert!(
            r.backend_kernel_ms > 5.0 * (r.proxy_user_ms + r.proxy_kernel_ms),
            "backend {} ms vs proxy {} ms",
            r.backend_kernel_ms,
            r.proxy_user_ms + r.proxy_kernel_ms
        );
    }

    #[test]
    fn proxy_user_time_is_flat_while_kernel_grows() {
        let low = quick(1);
        let high = quick(8);
        // User time roughly constant (within 3x), kernel time grows.
        assert!(
            high.proxy_user_ms < low.proxy_user_ms * 3.0 + 0.05,
            "user {} -> {}",
            low.proxy_user_ms,
            high.proxy_user_ms
        );
        assert!(
            high.proxy_kernel_ms > low.proxy_kernel_ms,
            "kernel {} -> {}",
            low.proxy_kernel_ms,
            high.proxy_kernel_ms
        );
    }

    #[test]
    fn network_rtt_is_insignificant() {
        let r = quick(1);
        assert!(r.network_rtt_ms < 0.3, "rtt {} ms", r.network_rtt_ms);
    }
}
