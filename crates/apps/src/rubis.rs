//! The RUBiS multi-tier auction site with DWCS scheduling (§3.3,
//! Figures 6 and 7).
//!
//! Two request classes share a pair of servlet servers:
//!
//! * **bidding** — CPU-intensive at the servlet tier, real-time deadlines,
//!   tight window constraint (high priority);
//! * **comment** — network-intensive (large responses), loose constraint.
//!
//! An open-loop httperf-style generator produces Poisson arrivals for
//! both classes (λ = 150 req/s each, as in the paper). A DWCS scheduler
//! on the client machine orders dispatches; requests whose deadlines
//! expire in the queue are dropped (the throughput loss in Figure 6).
//! Halfway through the run a background load lands on one server.
//!
//! Plain DWCS dispatches round-robin and suffers; **RA-DWCS** subscribes
//! to SysProf's per-server load reports and routes around the loaded
//! server, keeping the high-priority bidding class nearly unaffected
//! (Figure 7) at < 2% monitoring cost.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dwcs::ra::{RaDispatcher, ServerLoad};
use dwcs::{Scheduler, StreamId, StreamSpec, WindowConstraint};
use pubsub::ChannelDecoder;
use serde::Serialize;
use simcore::stats::RateMeter;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{EndPoint, FaultPlan, LinkSpec, Port};
use simos::programs::ComputeLoop;
use simos::{KernelOutput, KernelSink, Message, ProcCtx, Program, SocketId, World, WorldBuilder};
use sysprof::{LoadRecord, MonitorConfig, SysProf, LOAD_TOPIC};

use crate::scenario::{Diagnosis, ScenarioRun, ScenarioSpec};

/// Servlet server port.
pub const SERVLET_PORT: Port = Port(8009);
/// Port on the client node receiving load reports for RA-DWCS.
pub const RA_FEED_PORT: Port = Port(9996);

const KIND_BID: u32 = 1;
const KIND_COMMENT: u32 = 2;
const RESP_OFFSET: u32 = 100;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct RubisConfig {
    /// Use resource-aware dispatch (Figure 7) instead of round-robin
    /// (Figure 6).
    pub resource_aware: bool,
    /// Deploy SysProf on the servlet servers. Forced on when
    /// `resource_aware` (RA-DWCS needs the measurements).
    pub monitored: bool,
    /// Run length.
    pub duration: SimDuration,
    /// Offered load per class, requests/second.
    pub rate_per_class: f64,
    /// When the background load starts (defaults to half the duration).
    pub disturbance_at: Option<SimDuration>,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for RubisConfig {
    fn default() -> Self {
        RubisConfig {
            resource_aware: false,
            monitored: false,
            duration: SimDuration::from_secs(60),
            rate_per_class: 150.0,
            disturbance_at: None,
            seed: 1,
        }
    }
}

/// Per-class outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ClassOutcome {
    /// Mean completed throughput over the whole run, responses/sec.
    pub mean_rps: f64,
    /// Mean throughput before the disturbance.
    pub first_half_rps: f64,
    /// Mean throughput after the disturbance.
    pub second_half_rps: f64,
    /// Completed responses.
    pub completed: u64,
    /// Requests dropped by DWCS (deadline expired in queue).
    pub dropped: u64,
    /// Window-constraint violations recorded by the scheduler.
    pub violations: u64,
    /// Per-second throughput series `(second, responses)`.
    pub series: Vec<(f64, f64)>,
}

/// Measured outcome of one RUBiS run.
#[derive(Debug, Clone, Serialize)]
pub struct RubisResult {
    /// The bidding (high-priority) class.
    pub bid: ClassOutcome,
    /// The comment (low-priority) class.
    pub comment: ClassOutcome,
    /// Aggregate mean throughput, responses/sec.
    pub total_rps: f64,
    /// Monitoring overhead fraction on the servlet servers (mean).
    pub server_overhead_fraction: f64,
}

// ---------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------

/// A servlet server: per-class service compute and response sizes.
struct ServletServer;

impl Program for ServletServer {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(SERVLET_PORT);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        match msg.kind {
            KIND_BID => {
                // CPU-intensive: consult the database, compute the bid.
                ctx.compute(SimDuration::from_millis(7));
                ctx.send_with_id(sock, 2 * 1024, KIND_BID + RESP_OFFSET, msg.msg_id);
            }
            KIND_COMMENT => {
                // Network-intensive: small compute, large page.
                ctx.compute(SimDuration::from_micros(1500));
                ctx.send_with_id(sock, 30 * 1024, KIND_COMMENT + RESP_OFFSET, msg.msg_id);
            }
            _ => {}
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Req {
    class: u32,
    /// Plain DWCS: the statically assigned server (the paper's URL-prefix
    /// dispatch). RA-DWCS: `None`, chosen at dispatch time from SysProf
    /// load reports.
    target: Option<NodeId>,
}

/// Shared observable state of the client driver.
#[derive(Default)]
struct DriverShared {
    bid_meter: Option<RateMeter>,
    comment_meter: Option<RateMeter>,
    bid_completed: u64,
    comment_completed: u64,
    bid_dropped: u64,
    comment_dropped: u64,
    bid_violations: u64,
    comment_violations: u64,
}

/// The httperf + DWCS driver on the client machine.
struct RubisDriver {
    servers: Vec<NodeId>,
    socks: HashMap<NodeId, SocketId>,
    connected: usize,
    sched: Scheduler<Req>,
    bids: StreamId,
    comments: StreamId,
    rate: f64,
    duration: SimDuration,
    outstanding: HashMap<NodeId, usize>,
    /// Which server each in-flight request (by socket) went to, FIFO.
    resource_aware: bool,
    loads: Rc<RefCell<RaDispatcher>>,
    shared: Rc<RefCell<DriverShared>>,
    rr: usize,
    max_outstanding_per_server: usize,
    started: bool,
}

const TOKEN_BID_ARRIVAL: u64 = 1;
const TOKEN_COMMENT_ARRIVAL: u64 = 2;
const TOKEN_POLL: u64 = 3;

impl RubisDriver {
    fn arm_arrival(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        let gap = ctx
            .rng()
            .exponential_duration(SimDuration::from_secs_f64(1.0 / self.rate));
        ctx.sleep(gap, token);
    }

    fn has_capacity(&self, server: NodeId) -> bool {
        self.outstanding.get(&server).copied().unwrap_or(0) < self.max_outstanding_per_server
    }

    /// Where the head-of-line request would go, or `None` if that target
    /// has no capacity right now.
    fn choose_target(&self, req: &Req) -> Option<NodeId> {
        match req.target {
            // Plain DWCS: statically assigned; if the assigned server has
            // no connection capacity, the dispatch pipe stalls (head of
            // line) — the blindness RA-DWCS fixes.
            Some(server) => self.has_capacity(server).then_some(server),
            // RA-DWCS: least-loaded server with capacity, per the latest
            // SysProf reports.
            None => {
                let loads = self.loads.borrow();
                let score = |s: &NodeId| -> f64 {
                    loads
                        .load_of(*s)
                        .map(|l| l.cpu_utilization + l.kernel_time_us / 10_000.0)
                        .unwrap_or(0.5)
                };
                self.servers
                    .iter()
                    .copied()
                    .filter(|s| self.has_capacity(*s))
                    .min_by(|a, b| score(a).partial_cmp(&score(b)).expect("finite scores"))
            }
        }
    }

    /// The server a newly arrived request is assigned to in plain mode
    /// (alternating, like per-request URL prefixes).
    fn static_target(&mut self) -> Option<NodeId> {
        if self.resource_aware {
            None
        } else {
            let s = self.servers[self.rr % self.servers.len()];
            self.rr += 1;
            Some(s)
        }
    }

    fn pump(&mut self, ctx: &mut ProcCtx<'_>) {
        // Count expirations, then dispatch while capacity exists.
        let now = ctx.now();
        let dropped = self.sched.expire(now);
        {
            let mut sh = self.shared.borrow_mut();
            for (stream, _req) in dropped {
                if stream == self.bids {
                    sh.bid_dropped += 1;
                } else {
                    sh.comment_dropped += 1;
                }
            }
            sh.bid_violations = self.sched.stats(self.bids).violations;
            sh.comment_violations = self.sched.stats(self.comments).violations;
        }
        while let Some((_stream, head)) = self.sched.peek(now) {
            let head = *head;
            let Some(server) = self.choose_target(&head) else {
                break; // head-of-line: its target (or every server) is full
            };
            let (_stream, req) = self.sched.next(now).expect("peeked");
            let sock = self.socks[&server];
            let bytes = match req.class {
                KIND_BID => 512,
                _ => 1024,
            };
            ctx.send(sock, bytes, req.class);
            *self.outstanding.entry(server).or_insert(0) += 1;
        }
    }
}

impl Program for RubisDriver {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        for &s in &self.servers.clone() {
            let sock = ctx.connect(s, SERVLET_PORT);
            self.socks.insert(s, sock);
        }
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, _sock: SocketId) {
        self.connected += 1;
        if self.connected == self.servers.len() && !self.started {
            self.started = true;
            {
                let mut sh = self.shared.borrow_mut();
                let w = SimDuration::from_secs(1);
                sh.bid_meter = Some(RateMeter::new(ctx.now(), w));
                sh.comment_meter = Some(RateMeter::new(ctx.now(), w));
            }
            self.arm_arrival(ctx, TOKEN_BID_ARRIVAL);
            self.arm_arrival(ctx, TOKEN_COMMENT_ARRIVAL);
            ctx.sleep(SimDuration::from_millis(5), TOKEN_POLL);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        let now = ctx.now();
        let over = now.saturating_since(SimTime::ZERO) >= self.duration;
        match token {
            TOKEN_BID_ARRIVAL if !over => {
                let target = self.static_target();
                self.sched.enqueue(
                    self.bids,
                    Req {
                        class: KIND_BID,
                        target,
                    },
                    now,
                );
                self.arm_arrival(ctx, TOKEN_BID_ARRIVAL);
            }
            TOKEN_COMMENT_ARRIVAL if !over => {
                let target = self.static_target();
                self.sched.enqueue(
                    self.comments,
                    Req {
                        class: KIND_COMMENT,
                        target,
                    },
                    now,
                );
                self.arm_arrival(ctx, TOKEN_COMMENT_ARRIVAL);
            }
            TOKEN_POLL if (!over || self.sched.pending() > 0) => {
                ctx.sleep(SimDuration::from_millis(5), TOKEN_POLL);
            }
            _ => {}
        }
        self.pump(ctx);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        // A response frees capacity on its server. Reverse-map the socket
        // through the deployment-ordered server list rather than scanning
        // the HashMap, so lookups never depend on hash iteration order.
        if let Some(&server) = self
            .servers
            .iter()
            .find(|n| self.socks.get(n) == Some(&sock))
        {
            if let Some(o) = self.outstanding.get_mut(&server) {
                *o = o.saturating_sub(1);
            }
        }
        {
            let mut sh = self.shared.borrow_mut();
            let now = ctx.now();
            match msg.kind.saturating_sub(RESP_OFFSET) {
                KIND_BID => {
                    sh.bid_completed += 1;
                    if let Some(m) = sh.bid_meter.as_mut() {
                        m.record(now);
                    }
                }
                KIND_COMMENT => {
                    sh.comment_completed += 1;
                    if let Some(m) = sh.comment_meter.as_mut() {
                        m.record(now);
                    }
                }
                _ => {}
            }
        }
        self.pump(ctx);
    }
}

/// Kernel sink on the client node that feeds SysProf load reports into
/// the RA dispatcher's view.
struct LoadFeed {
    loads: Rc<RefCell<RaDispatcher>>,
    decoders: HashMap<EndPoint, ChannelDecoder>,
}

impl KernelSink for LoadFeed {
    fn on_message(
        &mut self,
        now_wall: SimTime,
        _node: NodeId,
        src: EndPoint,
        _msg: Message,
        data: simos::Bytes,
    ) -> KernelOutput {
        let decoder = self.decoders.entry(src).or_default();
        for frame in sysprof::split_frames(&data) {
            if let Ok(Some((_topic, values))) = decoder.decode(frame) {
                if let Some(load) = LoadRecord::from_values(values.as_slice()) {
                    self.loads.borrow_mut().update_load(
                        load.node,
                        ServerLoad {
                            cpu_utilization: load.cpu_utilization,
                            kernel_time_us: load.mean_kernel_us,
                            reported_at: now_wall,
                        },
                    );
                }
            }
        }
        KernelOutput {
            cost: SimDuration::from_micros(2),
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Runs the RUBiS experiment.
pub fn run_rubis(config: RubisConfig) -> RubisResult {
    run_rubis_inner(config, FaultPlan::default()).2
}

fn run_rubis_inner(
    config: RubisConfig,
    faults: FaultPlan,
) -> (World, Option<SysProf>, RubisResult) {
    let monitored = config.monitored || config.resource_aware;
    let mut world = WorldBuilder::new(config.seed)
        .node("client")
        .node("servlet-a")
        .node("servlet-b")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .faults(faults)
        .build()
        .expect("topology");
    let client = NodeId(0);
    let servers = vec![NodeId(1), NodeId(2)];
    let gpa_node = NodeId(3);

    let sysprof = monitored.then(|| {
        let mut mc = MonitorConfig::default();
        // Load reports every 50 ms keep RA-DWCS responsive.
        mc.daemon.flush_interval = SimDuration::from_millis(50);
        SysProf::deploy(&mut world, &servers, gpa_node, mc)
    });

    let loads = Rc::new(RefCell::new(RaDispatcher::new(servers.clone())));
    if config.resource_aware {
        let sp = sysprof.as_ref().expect("forced on");
        world.install_sink(
            client,
            RA_FEED_PORT,
            Box::new(LoadFeed {
                loads: loads.clone(),
                decoders: HashMap::new(),
            }),
        );
        let reply_to = EndPoint::new(world.network().node_ip(client), RA_FEED_PORT);
        for &s in &servers {
            sp.subscribe(&mut world, client, s, LOAD_TOPIC, reply_to, None);
        }
    }

    for &s in &servers {
        world.spawn(s, "servlet", Box::new(ServletServer));
    }

    // DWCS streams: bidding tight (can lose 1 of 20 deadlines), comments
    // loose (can lose 3 of 5).
    let mut sched: Scheduler<Req> = Scheduler::new();
    let bids = sched.add_stream(StreamSpec {
        name: "bidding".into(),
        period: SimDuration::from_millis(150),
        window: WindowConstraint { x: 1, y: 20 },
    });
    let comments = sched.add_stream(StreamSpec {
        name: "comment".into(),
        period: SimDuration::from_millis(400),
        window: WindowConstraint { x: 3, y: 5 },
    });

    let shared = Rc::new(RefCell::new(DriverShared::default()));
    world.spawn(
        client,
        "httperf+dwcs",
        Box::new(RubisDriver {
            servers: servers.clone(),
            socks: HashMap::new(),
            connected: 0,
            sched,
            bids,
            comments,
            rate: config.rate_per_class,
            duration: config.duration,
            outstanding: HashMap::new(),
            resource_aware: config.resource_aware,
            loads,
            shared: shared.clone(),
            rr: 0,
            max_outstanding_per_server: 8,
            started: false,
        }),
    );

    // The mid-run disturbance: a background job lands on servlet-a.
    let disturbance_at = config
        .disturbance_at
        .unwrap_or(SimDuration::from_nanos(config.duration.as_nanos() / 2));
    struct DisturbanceSpawner {
        delay: SimDuration,
        work: SimDuration,
    }
    impl Program for DisturbanceSpawner {
        fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
            ctx.sleep(self.delay, 0);
        }
        fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, _token: u64) {
            // Three CPU-bound jobs: enough contention that the servlet
            // can no longer cover its offered load on this server.
            for i in 0..3 {
                ctx.spawn(
                    &format!("background-load-{i}"),
                    Box::new(ComputeLoop::new(self.work, SimDuration::from_millis(4))),
                );
            }
            ctx.exit();
        }
    }
    world.spawn(
        servers[0],
        "disturbance",
        Box::new(DisturbanceSpawner {
            delay: disturbance_at,
            // Enough CPU-bound work to stay saturating past the run's end.
            work: config.duration,
        }),
    );

    world.run_until(SimTime::ZERO + config.duration + SimDuration::from_secs(3));

    let sh = shared.borrow();
    let half_sec = disturbance_at.as_secs_f64();
    let outcome = |meter: &Option<RateMeter>, completed, dropped, violations| {
        let series: Vec<(f64, f64)> = meter
            .as_ref()
            .map(|m| {
                m.rates_per_sec()
                    .into_iter()
                    .map(|(t, r)| (t.as_secs_f64(), r))
                    .collect()
            })
            .unwrap_or_default();
        let duration_s = config.duration.as_secs_f64();
        let in_run: Vec<&(f64, f64)> = series.iter().filter(|(t, _)| *t < duration_s).collect();
        let first: Vec<f64> = in_run
            .iter()
            .filter(|(t, _)| *t < half_sec)
            .map(|(_, r)| *r)
            .collect();
        let second: Vec<f64> = in_run
            .iter()
            .filter(|(t, _)| *t >= half_sec)
            .map(|(_, r)| *r)
            .collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        ClassOutcome {
            mean_rps: completed as f64 / duration_s,
            first_half_rps: mean(&first),
            second_half_rps: mean(&second),
            completed,
            dropped,
            violations,
            series,
        }
    };

    let bid = outcome(
        &sh.bid_meter,
        sh.bid_completed,
        sh.bid_dropped,
        sh.bid_violations,
    );
    let comment = outcome(
        &sh.comment_meter,
        sh.comment_completed,
        sh.comment_dropped,
        sh.comment_violations,
    );
    let total_rps = bid.mean_rps + comment.mean_rps;

    let server_overhead_fraction = match &sysprof {
        Some(sp) => {
            servers
                .iter()
                .map(|&s| sp.overhead_fraction(&world, s))
                .sum::<f64>()
                / servers.len() as f64
        }
        None => 0.0,
    };

    let result = RubisResult {
        bid,
        comment,
        total_rps,
        server_overhead_fraction,
    };
    (world, sysprof, result)
}

/// RUBiS as a [`ScenarioSpec`]: the mid-run background load lands on
/// servlet-a, and the GPA's load reports must indict it.
#[derive(Debug, Clone)]
pub struct RubisScenario {
    /// Run length (the disturbance lands halfway through).
    pub duration: SimDuration,
    /// Offered load per class, requests/second.
    pub rate_per_class: f64,
}

impl Default for RubisScenario {
    fn default() -> Self {
        RubisScenario {
            duration: SimDuration::from_secs(20),
            rate_per_class: 150.0,
        }
    }
}

impl ScenarioSpec for RubisScenario {
    type Output = RubisResult;

    fn name(&self) -> &'static str {
        "rubis"
    }

    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<RubisResult> {
        let config = RubisConfig {
            resource_aware: false,
            monitored: true,
            duration: self.duration,
            rate_per_class: self.rate_per_class,
            disturbance_at: None,
            seed,
        };
        let (world, sysprof, output) = run_rubis_inner(config, faults);
        ScenarioRun {
            world,
            sysprof: sysprof.expect("config.monitored is set"),
            output,
        }
    }

    fn diagnose(&self, run: &ScenarioRun<RubisResult>) -> Diagnosis {
        let gpa = run.sysprof.gpa();
        let gpa = gpa.borrow();
        let servers = [NodeId(1), NodeId(2)];
        let names = ["servlet-a", "servlet-b"];
        // The disturbance saturates one server from mid-run on, so its
        // *latest* load report separates the servers far more sharply
        // than the whole-run mean.
        let latest: Vec<f64> = servers
            .iter()
            .map(|&s| gpa.node_load(s).map_or(0.0, |v| v.latest.cpu_utilization))
            .collect();
        let loaded = if latest[0] >= latest[1] { 0 } else { 1 };
        let evidence: Vec<String> = servers
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let view = gpa.node_load(s);
                let (mean, reports) = view
                    .as_ref()
                    .map_or((0.0, 0), |v| (v.mean_utilization, v.reports));
                let total = gpa
                    .class_summary(s, SERVLET_PORT)
                    .map_or(0.0, |c| c.mean_total_us);
                format!(
                    "{}: latest cpu {:.0}%, mean {:.0}% over {} reports, mean servlet time {:.0}µs",
                    names[i],
                    100.0 * latest[i],
                    100.0 * mean,
                    reports,
                    total
                )
            })
            .collect();
        Diagnosis {
            verdict: format!(
                "background load on {} (node {}): cpu {:.0}% vs {:.0}% on its peer",
                names[loaded],
                servers[loaded].0,
                100.0 * latest[loaded],
                100.0 * latest[1 - loaded]
            ),
            evidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(ra: bool, seed: u64) -> RubisResult {
        run_rubis(RubisConfig {
            resource_aware: ra,
            monitored: ra,
            duration: SimDuration::from_secs(20),
            rate_per_class: 150.0,
            disturbance_at: None,
            seed,
        })
    }

    #[test]
    fn throughput_approaches_offered_load_before_disturbance() {
        let r = quick(false, 3);
        assert!(
            r.bid.first_half_rps > 120.0,
            "bid first half {}",
            r.bid.first_half_rps
        );
        assert!(
            r.comment.first_half_rps > 120.0,
            "comment first half {}",
            r.comment.first_half_rps
        );
    }

    #[test]
    fn plain_dwcs_degrades_after_disturbance() {
        let r = quick(false, 3);
        assert!(
            r.bid.second_half_rps < r.bid.first_half_rps - 5.0,
            "bid {} -> {}",
            r.bid.first_half_rps,
            r.bid.second_half_rps
        );
        assert!(
            r.bid.dropped + r.comment.dropped > 0,
            "DWCS must drop under overload"
        );
    }

    #[test]
    fn ra_dwcs_protects_the_bidding_class() {
        let plain = quick(false, 3);
        let ra = quick(true, 3);
        assert!(
            ra.bid.second_half_rps > plain.bid.second_half_rps,
            "ra {} vs plain {}",
            ra.bid.second_half_rps,
            plain.bid.second_half_rps
        );
        assert!(
            ra.total_rps > plain.total_rps,
            "ra total {} vs plain {}",
            ra.total_rps,
            plain.total_rps
        );
    }

    #[test]
    fn monitoring_cost_is_small() {
        let ra = quick(true, 4);
        assert!(
            ra.server_overhead_fraction < 0.02,
            "overhead {}",
            ra.server_overhead_fraction
        );
    }
}
