//! Sharded key-value store with zipfian hot-key skew and per-shard
//! queues.
//!
//! Topology: closed-loop clients → a **router** that owns one ping-pong
//! flow per shard (one request outstanding per shard, the rest queue at
//! the router) → `S` **shard** nodes doing the actual lookups. Keys are
//! zipf-distributed and placed by `key % shards`, so the shard owning
//! rank-0 keys absorbs a disproportionate share of traffic: its router
//! queue grows and every request behind a hot-shard request inherits the
//! queueing delay.
//!
//! The diagnosis SysProf must produce: the **hot shard** — the shard
//! node whose responder-side interaction count dominates the shard tier
//! — surfaced purely from GPA class summaries, without reading any
//! application counter.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use serde::Serialize;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkSpec, Port};
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::SysProf;

use crate::scenario::{
    percentile_us, scenario_monitor_config, ClientStats, Diagnosis, ScenarioRun, ScenarioSpec,
    ZipfClient,
};

/// Client-facing router port.
pub const ROUTER_PORT: Port = Port(7000);
/// Shard service port.
pub const SHARD_PORT: Port = Port(7100);

const REQ_BASE: u32 = 1_000;
const RESP_OFFSET: u32 = 100_000;
const TOK_RETRY: u64 = 0x5E7;

/// Parameters of the sharded KV scenario.
#[derive(Debug, Clone)]
pub struct KvStoreScenario {
    /// Closed-loop client nodes.
    pub clients: usize,
    /// Shard nodes.
    pub shards: usize,
    /// Distinct keys; key `k` lives on shard `k % shards`.
    pub keys: usize,
    /// Zipf skew of the key popularity distribution.
    pub skew: f64,
    /// Request payload bytes.
    pub req_bytes: u64,
    /// Value payload bytes returned by shards.
    pub value_bytes: u64,
    /// Per-lookup compute at a shard.
    pub shard_service: SimDuration,
    /// How long clients keep issuing requests.
    pub duration: SimDuration,
    /// Client/router retransmit timeout (loss tolerance).
    pub retry_after: SimDuration,
}

impl Default for KvStoreScenario {
    fn default() -> Self {
        KvStoreScenario {
            clients: 2,
            shards: 4,
            keys: 64,
            skew: 1.2,
            req_bytes: 128,
            value_bytes: 512,
            shard_service: SimDuration::from_micros(80),
            duration: SimDuration::from_millis(800),
            retry_after: SimDuration::from_millis(50),
        }
    }
}

/// Measured outcome of one KV run (application truth; the GPA's view
/// lives in the [`Diagnosis`]).
#[derive(Debug, Clone, Serialize)]
pub struct KvStoreResult {
    /// Requests completed across all clients.
    pub ops_completed: u64,
    /// Completions per shard, shard index order (app-side counters).
    pub per_shard_ops: Vec<u64>,
    /// Shard with the most completions.
    pub hot_shard: usize,
    /// Its fraction of all shard completions.
    pub hot_shard_share: f64,
    /// Client-observed median latency, µs.
    pub p50_us: u64,
    /// Client-observed 95th-percentile latency, µs.
    pub p95_us: u64,
    /// Deepest router queue observed per shard, shard index order.
    pub max_queue_depth: Vec<u64>,
    /// Client + router retransmits (0 on a clean network).
    pub retries: u64,
}

// ---------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------

struct ClientReq {
    sock: SocketId,
    msg_id: u64,
    kind: u32,
    bytes: u64,
}

struct InFlight {
    shard_msg_id: u64,
    client: ClientReq,
    since: SimTime,
}

struct ShardConn {
    node: NodeId,
    sock: Option<SocketId>,
    ready: bool,
    busy: Option<InFlight>,
    queue: VecDeque<ClientReq>,
}

#[derive(Default)]
struct RouterShared {
    max_queue_depth: Vec<u64>,
    retries: u64,
}

/// The shard router: one ping-pong flow per shard with a FIFO queue in
/// front of it — the per-shard queues the hot shard backs up.
struct KvRouter {
    shards: Vec<ShardConn>,
    route_cost: SimDuration,
    retry_after: SimDuration,
    shared: Rc<RefCell<RouterShared>>,
}

impl KvRouter {
    fn pump(&mut self, ctx: &mut ProcCtx<'_>, idx: usize) {
        let s = &mut self.shards[idx];
        let (Some(sock), true, None) = (s.sock, s.ready, s.busy.as_ref()) else {
            return;
        };
        let Some(client) = s.queue.pop_front() else {
            return;
        };
        let shard_msg_id = ctx.send(sock, client.bytes, client.kind);
        s.busy = Some(InFlight {
            shard_msg_id,
            client,
            since: ctx.now(),
        });
    }

    fn shard_of_sock(&self, sock: SocketId) -> Option<usize> {
        self.shards.iter().position(|s| s.sock == Some(sock))
    }
}

impl Program for KvRouter {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(ROUTER_PORT);
        for s in &mut self.shards {
            s.sock = Some(ctx.connect(s.node, SHARD_PORT));
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }

    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        if let Some(idx) = self.shard_of_sock(sock) {
            self.shards[idx].ready = true;
            self.pump(ctx, idx);
        }
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if let Some(idx) = self.shard_of_sock(sock) {
            // Shard response: relay to the waiting client, advance queue.
            let done = match &self.shards[idx].busy {
                Some(f) if f.shard_msg_id == msg.msg_id => self.shards[idx].busy.take(),
                _ => None, // duplicate of an already-relayed response
            };
            if let Some(f) = done {
                ctx.compute(SimDuration::from_micros(10));
                ctx.send_with_id(
                    f.client.sock,
                    msg.bytes,
                    f.client.kind + RESP_OFFSET,
                    f.client.msg_id,
                );
                self.pump(ctx, idx);
            }
            return;
        }
        // Client request: key is encoded in the kind.
        let key = msg.kind.saturating_sub(REQ_BASE) as usize;
        let idx = key % self.shards.len();
        ctx.compute(self.route_cost);
        self.shards[idx].queue.push_back(ClientReq {
            sock,
            msg_id: msg.msg_id,
            kind: msg.kind,
            bytes: msg.bytes,
        });
        let depth = self.shards[idx].queue.len() as u64;
        {
            let mut sh = self.shared.borrow_mut();
            sh.max_queue_depth[idx] = sh.max_queue_depth[idx].max(depth);
        }
        self.pump(ctx, idx);
    }

    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, token: u64) {
        if token != TOK_RETRY {
            return;
        }
        let now = ctx.now();
        for s in &mut self.shards {
            if let (Some(sock), Some(f)) = (s.sock, s.busy.as_mut()) {
                if now.saturating_since(f.since) >= self.retry_after {
                    ctx.send_with_id(sock, f.client.bytes, f.client.kind, f.shard_msg_id);
                    f.since = now;
                    self.shared.borrow_mut().retries += 1;
                }
            }
        }
        ctx.sleep(self.retry_after, TOK_RETRY);
    }
}

/// A shard: constant-time lookup, value-sized response. Stateless, so
/// retransmitted requests are simply answered again.
struct KvShard {
    idx: usize,
    service: SimDuration,
    value_bytes: u64,
    ops: Rc<RefCell<Vec<u64>>>,
}

impl Program for KvShard {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(SHARD_PORT);
    }

    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if msg.kind < REQ_BASE || msg.kind >= REQ_BASE + RESP_OFFSET {
            return;
        }
        ctx.compute(self.service);
        self.ops.borrow_mut()[self.idx] += 1;
        ctx.send_with_id(sock, self.value_bytes, msg.kind + RESP_OFFSET, msg.msg_id);
    }
}

// ---------------------------------------------------------------------
// Runner + diagnosis
// ---------------------------------------------------------------------

impl KvStoreScenario {
    /// The router's node id (spawn order: clients, router, shards, GPA).
    pub fn router_node(&self) -> NodeId {
        NodeId(self.clients as u32)
    }
    /// Node id of shard `s`.
    pub fn shard_node(&self, s: usize) -> NodeId {
        NodeId((self.clients + 1 + s) as u32)
    }
    /// The GPA's node id.
    pub fn gpa_node(&self) -> NodeId {
        NodeId((self.clients + 1 + self.shards) as u32)
    }
}

impl ScenarioSpec for KvStoreScenario {
    type Output = KvStoreResult;

    fn name(&self) -> &'static str {
        "kvstore"
    }

    fn run_under(&self, seed: u64, faults: FaultPlan) -> ScenarioRun<KvStoreResult> {
        let mut builder = WorldBuilder::new(seed);
        for i in 0..self.clients {
            builder = builder.node(&format!("kv-client{i}"));
        }
        builder = builder.node("kv-router");
        for i in 0..self.shards {
            builder = builder.node(&format!("kv-shard{i}"));
        }
        let mut world = builder
            .node("gpa")
            .full_mesh(LinkSpec::gigabit_lan())
            .faults(faults)
            .build()
            .expect("topology");

        let router_node = NodeId(self.clients as u32);
        let shard_nodes: Vec<NodeId> = (0..self.shards)
            .map(|i| NodeId((self.clients + 1 + i) as u32))
            .collect();
        let gpa_node = NodeId((self.clients + 1 + self.shards) as u32);

        let mut monitored = vec![router_node];
        monitored.extend(shard_nodes.iter().copied());
        let sysprof = SysProf::deploy(&mut world, &monitored, gpa_node, scenario_monitor_config());

        let ops = Rc::new(RefCell::new(vec![0u64; self.shards]));
        for (i, &n) in shard_nodes.iter().enumerate() {
            world.spawn(
                n,
                &format!("kv-shard{i}"),
                Box::new(KvShard {
                    idx: i,
                    service: self.shard_service,
                    value_bytes: self.value_bytes,
                    ops: ops.clone(),
                }),
            );
        }
        let router_shared = Rc::new(RefCell::new(RouterShared {
            max_queue_depth: vec![0; self.shards],
            retries: 0,
        }));
        world.spawn(
            router_node,
            "kv-router",
            Box::new(KvRouter {
                shards: shard_nodes
                    .iter()
                    .map(|&node| ShardConn {
                        node,
                        sock: None,
                        ready: false,
                        busy: None,
                        queue: VecDeque::new(),
                    })
                    .collect(),
                route_cost: SimDuration::from_micros(10),
                retry_after: self.retry_after,
                shared: router_shared.clone(),
            }),
        );

        let stats = ClientStats::shared(self.keys);
        let deadline = SimTime::ZERO + self.duration;
        for c in 0..self.clients {
            world.spawn(
                NodeId(c as u32),
                &format!("kv-client{c}"),
                Box::new(ZipfClient {
                    server: router_node,
                    port: ROUTER_PORT,
                    keys: self.keys,
                    skew: self.skew,
                    req_bytes: self.req_bytes,
                    kind_base: REQ_BASE,
                    resp_offset: RESP_OFFSET,
                    deadline,
                    retry_after: self.retry_after,
                    shared: stats.clone(),
                    sock: None,
                    outstanding: None,
                }),
            );
        }

        world.run_until(deadline + SimDuration::from_secs(1));

        let per_shard_ops = ops.borrow().clone();
        let total: u64 = per_shard_ops.iter().sum();
        let (hot_shard, &hot_ops) = per_shard_ops
            .iter()
            .enumerate()
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
            .expect("at least one shard");
        let mut st = stats.borrow_mut();
        let mut lat = std::mem::take(&mut st.latencies_us);
        let rsh = router_shared.borrow();
        let output = KvStoreResult {
            ops_completed: st.completed,
            per_shard_ops: per_shard_ops.clone(),
            hot_shard,
            hot_shard_share: if total > 0 {
                hot_ops as f64 / total as f64
            } else {
                0.0
            },
            p50_us: percentile_us(&mut lat, 50.0),
            p95_us: percentile_us(&mut lat, 95.0),
            max_queue_depth: rsh.max_queue_depth.clone(),
            retries: st.retries + rsh.retries,
        };
        drop(st);
        drop(rsh);
        ScenarioRun {
            world,
            sysprof,
            output,
        }
    }

    fn diagnose(&self, run: &ScenarioRun<KvStoreResult>) -> Diagnosis {
        let gpa = run.sysprof.gpa();
        let gpa = gpa.borrow();
        let router_node = NodeId(self.clients as u32);
        // The GPA's view: responder-side interaction counts per shard
        // node — no application counters consulted.
        let counts: Vec<u64> = (0..self.shards)
            .map(|i| {
                let node = NodeId((self.clients + 1 + i) as u32);
                gpa.class_summary(node, SHARD_PORT).map_or(0, |s| s.count)
            })
            .collect();
        let total: u64 = counts.iter().sum();
        let (hot, &hot_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
            .expect("at least one shard");
        let share = if total > 0 {
            100.0 * hot_count as f64 / total as f64
        } else {
            0.0
        };
        let mut evidence: Vec<String> = counts
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let node = NodeId((self.clients + 1 + i) as u32);
                let user = gpa
                    .class_summary(node, SHARD_PORT)
                    .map_or(0.0, |s| s.mean_user_us);
                format!(
                    "shard {i} (node {}): {n} interactions, mean user {user:.0}µs",
                    node.0
                )
            })
            .collect();
        if let Some(r) = gpa.class_summary(router_node, ROUTER_PORT) {
            evidence.push(format!(
                "router: {} interactions, p95 total {:.0}µs",
                r.count, r.p95_total_us
            ));
        }
        Diagnosis {
            verdict: format!(
                "hot shard {hot}: {share:.0}% of shard traffic ({hot_count}/{total} interactions)"
            ),
            evidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> KvStoreScenario {
        KvStoreScenario {
            duration: SimDuration::from_millis(400),
            ..KvStoreScenario::default()
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_shard_zero() {
        let run = quick().run(7);
        let r = &run.output;
        assert!(r.ops_completed > 200, "ops {}", r.ops_completed);
        assert_eq!(r.hot_shard, 0, "key rank 0 lives on shard 0: {r:?}");
        assert!(
            r.hot_shard_share > 0.3,
            "hot share {} of {:?}",
            r.hot_shard_share,
            r.per_shard_ops
        );
        assert_eq!(r.retries, 0, "clean network needs no retries");
    }

    #[test]
    fn gpa_diagnosis_agrees_with_application_truth() {
        let spec = quick();
        let run = spec.run(7);
        let d = spec.diagnose(&run);
        assert!(
            d.verdict
                .starts_with(&format!("hot shard {}", run.output.hot_shard)),
            "GPA indicted {:?}, app says shard {}",
            d.verdict,
            run.output.hot_shard
        );
    }

    #[test]
    fn survives_loss_with_retries() {
        let spec = quick();
        let run = spec.run_under(7, testplan_loss());
        // Every lost hop costs a retry-timeout stall, so the closed loop
        // slows by an order of magnitude — but it must keep moving.
        assert!(run.output.ops_completed > 50, "{:?}", run.output);
        assert!(run.output.retries > 0, "loss must trigger retries");
    }

    fn testplan_loss() -> FaultPlan {
        FaultPlan::default().with_default_link(simnet::LinkFaults::lossy(0.01))
    }
}
