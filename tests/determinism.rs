//! Determinism regression: the quickstart scenario, run twice from the
//! same seed, must produce byte-identical kernel traces, procfs views,
//! and monitor statistics — with and without an (empty) fault injector
//! installed. This is the replay guarantee every chaos test builds on.

use kprof::{EventMask, TraceAnalyzer};
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{FaultPlan, LinkSpec, Port};
use simos::programs::EchoServer;
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::{procfs, MonitorConfig, SysProf};
use testkit::chaos_report;

/// The quickstart's periodic client: a request every 5 ms.
struct PeriodicClient {
    server: NodeId,
    sock: Option<SocketId>,
    sent: u32,
}

impl Program for PeriodicClient {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.server, Port(80));
    }
    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        self.sock = Some(sock);
        ctx.send(sock, 2_000, 1);
        self.sent += 1;
    }
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, _sock: SocketId, _reply: Message) {
        if self.sent >= 100 {
            ctx.exit();
            return;
        }
        ctx.sleep(SimDuration::from_millis(5), 0);
    }
    fn on_timer(&mut self, ctx: &mut ProcCtx<'_>, _token: u64) {
        let sock = self.sock.expect("connected");
        ctx.send(sock, 2_000, 1);
        self.sent += 1;
    }
}

/// Runs the quickstart scenario and renders everything observable into
/// one string: the server's raw kernel event trace, the procfs views,
/// and the full chaos report (node/daemon/GPA counters).
fn quickstart_digest(seed: u64, faults: Option<FaultPlan>) -> String {
    // Subscription setup is a one-shot control exchange with no retry
    // (only the sequenced data path is protected), so a lossy plan can
    // legitimately strand a daemon unsubscribed; volume assertions only
    // make sense when the network is clean.
    let perturbed = faults.as_ref().is_some_and(FaultPlan::perturbs_network);
    let mut builder = WorldBuilder::new(seed)
        .node("client")
        .node("server")
        .node("monitor")
        .full_mesh(LinkSpec::gigabit_lan());
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let mut world = builder.build().unwrap();
    let sysprof = SysProf::deploy(
        &mut world,
        &[NodeId(1)],
        NodeId(2),
        MonitorConfig::default(),
    );
    // A raw event tape on the server, alongside the LPA.
    let trace_id = world
        .kprof_mut(NodeId(1))
        .register(Box::new(TraceAnalyzer::new(EventMask::ALL, 8192)));

    world.spawn(
        NodeId(1),
        "app-server",
        Box::new(EchoServer::new(
            Port(80),
            512,
            SimDuration::from_micros(300),
        )),
    );
    world.spawn(
        NodeId(0),
        "client",
        Box::new(PeriodicClient {
            server: NodeId(1),
            sock: None,
            sent: 0,
        }),
    );
    world.run_until(SimTime::from_secs(2));

    let mut out = String::new();
    let trace = world
        .kprof(NodeId(1))
        .analyzer_as::<TraceAnalyzer>(trace_id)
        .expect("trace installed");
    out.push_str(&trace.render());
    let lpa = sysprof.lpa(&world, NodeId(1)).expect("LPA deployed");
    out.push_str(&procfs::render_status(
        NodeId(1),
        world.kprof(NodeId(1)),
        lpa,
    ));
    out.push_str(&procfs::render_interactions(lpa));
    out.push_str(&procfs::render_classes(lpa));
    {
        let gpa = sysprof.gpa();
        let gpa = gpa.borrow();
        out.push_str(&procfs::render_gpa_summary(&gpa));
        assert!(
            perturbed || gpa.interaction_count() > 50,
            "workload was monitored"
        );
    }
    out.push_str(&chaos_report(&world, &sysprof));
    out
}

#[test]
fn quickstart_replays_bit_identically() {
    let a = quickstart_digest(42, None);
    let b = quickstart_digest(42, None);
    assert!(a.len() > 1_000, "digest has substance ({} bytes)", a.len());
    assert_eq!(a, b, "same seed, same bytes");
}

#[test]
fn different_seeds_actually_diverge_under_faults() {
    // A fault-free quickstart consumes no randomness at all, so the seed
    // is only observable once the injector starts drawing from its
    // forked stream: different seeds must then lose different packets.
    // Loss only on the server→monitor link: the unprotected application
    // path stays clean, the reliable dissemination path takes the hits.
    let lossy =
        || FaultPlan::default().with_link(NodeId(1), NodeId(2), simnet::LinkFaults::lossy(0.05));
    assert_ne!(
        quickstart_digest(42, Some(lossy())),
        quickstart_digest(43, Some(lossy())),
        "seeds must matter once faults draw randomness"
    );
}

#[test]
fn empty_fault_plan_is_invisible() {
    // An installed injector with nothing to do consumes no randomness
    // and perturbs no packets: bit-identical to no injector at all.
    assert_eq!(
        quickstart_digest(42, None),
        quickstart_digest(42, Some(FaultPlan::default())),
        "empty plan must not perturb the run"
    );
}
