//! Scenario-library integration tests: golden GPA diagnoses, the
//! seed × fault-plan chaos matrix, and targeted partition/crash runs.
//!
//! The golden tests pin the *exact* verdict string each scenario's
//! diagnosis renders for a fixed seed. If a code change shifts the GPA's
//! attribution — a different shard indicted, a different leaf blamed, a
//! different straggler named — the string changes and the test fails.
//! Numbers inside the verdict are part of the contract on purpose: the
//! attribution is only trustworthy if it is bit-stable under replay.

use simcore::{NodeId, SimDuration, SimTime};
use simnet::LinkFaults;
use sysprof_apps::{
    AllreduceScenario, CdnScenario, FanoutScenario, IperfScenario, KvStoreScenario,
    LinpackScenario, RubisScenario, ScenarioSpec, StorageScenario,
};
use testkit::{
    assert_path_completeness, assert_tier_latency_budget, check_invariants, scenario_matrix,
    uniform_loss,
};

// ---------------------------------------------------------------------
// Golden diagnoses (seed 7, default specs)
// ---------------------------------------------------------------------

#[test]
fn kvstore_golden_diagnosis() {
    let spec = KvStoreScenario::default();
    let run = spec.run(7);
    let d = spec.diagnose(&run);
    assert_eq!(
        d.verdict,
        "hot shard 0: 43% of shard traffic (1492/3476 interactions)"
    );
    // The GPA's indictment agrees with the application's own counters.
    assert_eq!(run.output.hot_shard, 0);
}

#[test]
fn fanout_golden_diagnosis() {
    let spec = FanoutScenario::default();
    let run = spec.run(7);
    let d = spec.diagnose(&run);
    assert_eq!(
        d.verdict,
        "slow leaf 4 (node 9): mean user 487µs vs leaf-tier median 66µs"
    );
    assert_eq!(spec.slow_leaf, 4, "the verdict names the configured leaf");
}

#[test]
fn allreduce_golden_diagnosis() {
    let spec = AllreduceScenario::default();
    let run = spec.run(7);
    let d = spec.diagnose(&run);
    assert_eq!(
        d.verdict,
        "straggler rank 2: mean reduce 88µs vs ring median 63µs"
    );
    assert_eq!(spec.straggler, 2, "the verdict names the configured rank");
}

#[test]
fn cdn_golden_diagnosis() {
    let spec = CdnScenario::default();
    let run = spec.run(7);
    let d = spec.diagnose(&run);
    assert_eq!(
        d.verdict,
        "origin-bound tail: edge p95/p50 = 32x, misses blocked on origin disk (1497µs mean)"
    );
}

// ---------------------------------------------------------------------
// Legacy apps through the same trait
// ---------------------------------------------------------------------

#[test]
fn storage_scenario_diagnoses_the_disk_bound_backend() {
    let spec = StorageScenario::default();
    let run = spec.run(7);
    let d = spec.diagnose(&run);
    assert!(
        d.verdict.starts_with("disk-bound back end"),
        "verdict {:?}",
        d.verdict
    );
    let gpa = run.sysprof.gpa();
    check_invariants(&gpa.borrow());
}

#[test]
fn rubis_scenario_diagnoses_the_disturbed_server() {
    let spec = RubisScenario::default();
    let run = spec.run(7);
    let d = spec.diagnose(&run);
    // The background load lands on servlet-a (node 1), halfway through.
    assert!(
        d.verdict
            .starts_with("background load on servlet-a (node 1)"),
        "verdict {:?}\nevidence {:?}",
        d.verdict,
        d.evidence
    );
}

#[test]
fn iperf_and_linpack_scenarios_run_monitored() {
    let iperf = IperfScenario {
        duration: SimDuration::from_millis(500),
        ..IperfScenario::default()
    };
    let run = iperf.run(7);
    let d = iperf.diagnose(&run);
    assert!(
        d.verdict.contains("receiver"),
        "iperf verdict {:?}",
        d.verdict
    );

    let linpack = LinpackScenario;
    let run = linpack.run(7);
    let d = linpack.diagnose(&run);
    assert!(
        d.verdict.starts_with("compute-bound, monitoring-neutral"),
        "linpack verdict {:?}",
        d.verdict
    );
}

// ---------------------------------------------------------------------
// Chaos matrix: every scenario × {clean, loss, chaos-mix} × seeds,
// invariants checked and replay compared bit-for-bit in every cell.
// ---------------------------------------------------------------------

fn quick_kv() -> KvStoreScenario {
    KvStoreScenario {
        duration: SimDuration::from_millis(300),
        ..KvStoreScenario::default()
    }
}

fn quick_fanout() -> FanoutScenario {
    FanoutScenario {
        duration: SimDuration::from_millis(300),
        ..FanoutScenario::default()
    }
}

fn quick_allreduce() -> AllreduceScenario {
    AllreduceScenario {
        iterations: 3,
        ..AllreduceScenario::default()
    }
}

fn quick_cdn() -> CdnScenario {
    CdnScenario {
        duration: SimDuration::from_millis(300),
        ..CdnScenario::default()
    }
}

#[test]
fn kvstore_survives_the_fault_matrix() {
    scenario_matrix!(quick_kv());
}

#[test]
fn fanout_survives_the_fault_matrix() {
    scenario_matrix!(quick_fanout());
}

#[test]
fn allreduce_survives_the_fault_matrix() {
    scenario_matrix!(quick_allreduce());
}

#[test]
fn cdn_survives_the_fault_matrix() {
    scenario_matrix!(quick_cdn());
}

// ---------------------------------------------------------------------
// Tier budgets and path completeness
// ---------------------------------------------------------------------

#[test]
fn fanout_paths_are_complete_and_healthy_leaves_meet_budget() {
    let spec = quick_fanout();
    let run = spec.run(7);
    let gpa = run.sysprof.gpa();
    let gpa = gpa.borrow();
    // Every request fans out through both mids: the frontend's
    // correlated paths must carry at least `mids` children each.
    assert_path_completeness(
        &gpa,
        spec.frontend_node(),
        sysprof_apps::fanout::FRONT_PORT,
        spec.mids,
        0.95,
    );
    // Healthy leaves answer well under a millisecond on average; the
    // configured slow leaf blows that budget by design.
    for l in 0..spec.mids * spec.leaves_per_mid {
        if l == spec.slow_leaf {
            continue;
        }
        assert_tier_latency_budget(
            &gpa,
            spec.leaf_node(l),
            sysprof_apps::fanout::LEAF_PORT,
            1_000.0,
        );
    }
}

#[test]
fn kvstore_shard_tier_meets_its_latency_budget() {
    let spec = quick_kv();
    let run = spec.run(7);
    let gpa = run.sysprof.gpa();
    let gpa = gpa.borrow();
    for s in 0..spec.shards {
        assert_tier_latency_budget(
            &gpa,
            spec.shard_node(s),
            sysprof_apps::kvstore::SHARD_PORT,
            1_000.0,
        );
    }
}

// ---------------------------------------------------------------------
// Targeted partition and crash runs
// ---------------------------------------------------------------------

/// A mid-run partition cuts the GPA off from every leaf's monitoring
/// stream; after it heals, dissemination must recover and the diagnosis
/// must still indict the configured slow leaf.
#[test]
fn fanout_diagnosis_survives_a_monitoring_partition() {
    let spec = quick_fanout();
    let leaves: Vec<NodeId> = (0..spec.mids * spec.leaves_per_mid)
        .map(|l| spec.leaf_node(l))
        .collect();
    let plan = uniform_loss(0.01).with_partition(
        leaves,
        vec![spec.gpa_node()],
        SimTime::from_millis(100),
        SimTime::from_millis(200),
    );
    let run = spec.run_under(7, plan);
    {
        let gpa = run.sysprof.gpa();
        check_invariants(&gpa.borrow());
    }
    let d = spec.diagnose(&run);
    assert!(
        d.verdict.starts_with("slow leaf 4"),
        "diagnosis after partition: {:?}",
        d.verdict
    );
}

/// A shard fail-stops mid-run (its process never comes back; only the
/// monitoring daemon warm-restarts). The application keeps serving the
/// other shards, the dissemination invariants hold, and the run replays
/// bit-identically.
#[test]
fn kvstore_survives_a_shard_crash() {
    let run_once = || {
        let spec = quick_kv();
        let plan = uniform_loss(0.0)
            .with_link(spec.router_node(), spec.gpa_node(), LinkFaults::lossy(0.02))
            .with_crash(
                spec.shard_node(3),
                SimTime::from_millis(150),
                Some(SimTime::from_millis(200)),
            );
        let run = spec.run_under(7, plan);
        {
            let gpa = run.sysprof.gpa();
            check_invariants(&gpa.borrow());
        }
        assert!(
            run.output.ops_completed > 50,
            "ops continued on surviving shards: {:?}",
            run.output
        );
        testkit::chaos_report(&run.world, &run.sysprof)
    };
    assert_eq!(run_once(), run_once(), "crash run replays bit-identically");
}

/// The straggler's monitoring link is lossy and the ring partitions from
/// the GPA briefly; the collective still finishes and the diagnosis
/// still names the straggler.
#[test]
fn allreduce_diagnosis_survives_monitoring_chaos() {
    let spec = quick_allreduce();
    let plan = uniform_loss(0.0)
        .with_link(
            spec.rank_node(spec.straggler),
            spec.gpa_node(),
            LinkFaults {
                loss: 0.05,
                duplicate: 0.02,
                reorder: 0.02,
                jitter: SimDuration::from_micros(200),
                reorder_delay: SimDuration::from_millis(1),
            },
        )
        .with_partition(
            vec![spec.rank_node(0), spec.rank_node(1)],
            vec![spec.gpa_node()],
            SimTime::from_millis(20),
            SimTime::from_millis(60),
        );
    let run = spec.run_under(7, plan);
    {
        let gpa = run.sysprof.gpa();
        check_invariants(&gpa.borrow());
    }
    assert_eq!(
        run.output.iterations_completed, spec.iterations as u64,
        "collective finished despite monitoring chaos"
    );
    let d = spec.diagnose(&run);
    assert!(
        d.verdict.starts_with("straggler rank 2"),
        "diagnosis under chaos: {:?}",
        d.verdict
    );
}
