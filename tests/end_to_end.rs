//! Whole-stack integration tests: kernel events → LPA → daemon → wire →
//! GPA, across a multi-tier topology with imperfect clocks.

use simcore::{NodeId, SimDuration, SimTime};
use simnet::{ClockSpec, LinkSpec, Port};
use simos::programs::EchoServer;
use simos::{Message, NodeConfig, ProcCtx, Program, SocketId, World, WorldBuilder};
use sysprof::{procfs, GpaConfig, MonitorConfig, SysProf};

/// In a happy-path run on an uncongested LAN no link queue should ever
/// overflow — monitoring traffic included.
fn assert_no_link_drops(world: &World, nodes: u32) {
    for a in 0..nodes {
        for b in (a + 1)..nodes {
            if let Some(link) = world.network().link_between(NodeId(a), NodeId(b)) {
                assert_eq!(link.drops(), (0, 0), "queue drops on link {a}-{b}");
            }
        }
    }
}

/// A client issuing `count` sequential requests.
struct SerialClient {
    server: NodeId,
    port: Port,
    bytes: u64,
    count: u32,
    done: std::rc::Rc<std::cell::Cell<u32>>,
}

impl Program for SerialClient {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.server, self.port);
    }
    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        ctx.send(sock, self.bytes, 1);
    }
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, _m: Message) {
        self.done.set(self.done.get() + 1);
        if self.done.get() < self.count {
            ctx.send(sock, self.bytes, 1);
        } else {
            ctx.exit();
        }
    }
}

/// A middle tier: forwards each request to a backend, relays the reply.
struct Relay {
    listen: Port,
    backend: NodeId,
    backend_port: Port,
    backend_sock: Option<SocketId>,
    client: Option<SocketId>,
}

impl Program for Relay {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(self.listen);
        self.backend_sock = Some(ctx.connect(self.backend, self.backend_port));
    }
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if Some(sock) == self.backend_sock {
            if let Some(client) = self.client {
                ctx.compute(SimDuration::from_micros(30));
                ctx.send(client, msg.bytes, 2);
            }
        } else {
            self.client = Some(sock);
            ctx.compute(SimDuration::from_micros(50));
            ctx.send(self.backend_sock.expect("connected"), msg.bytes, 1);
        }
    }
}

#[test]
fn gpa_receives_interactions_over_the_wire() {
    let mut world = WorldBuilder::new(5)
        .node("client")
        .node("server")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .unwrap();
    let sysprof = SysProf::deploy(
        &mut world,
        &[NodeId(1)],
        NodeId(2),
        MonitorConfig::default(),
    );

    world.spawn(
        NodeId(1),
        "echo",
        Box::new(EchoServer::new(
            Port(80),
            256,
            SimDuration::from_micros(100),
        )),
    );
    let done = std::rc::Rc::new(std::cell::Cell::new(0));
    world.spawn(
        NodeId(0),
        "client",
        Box::new(SerialClient {
            server: NodeId(1),
            port: Port(80),
            bytes: 4_000,
            count: 50,
            done: done.clone(),
        }),
    );
    world.run_until(SimTime::from_secs(3));

    assert_eq!(done.get(), 50, "application completed");
    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    // The last interaction may still sit in an unflushed buffer; nearly
    // all must have made it across the monitoring channel.
    assert!(
        gpa.interaction_count() >= 45,
        "GPA saw {} interactions",
        gpa.interaction_count()
    );
    assert_eq!(gpa.decode_failures(), 0, "clean wire decode");
    let summary = gpa
        .class_summary(NodeId(1), Port(80))
        .expect("class exists");
    assert!(
        summary.mean_user_us >= 90.0,
        "user time includes the 100µs compute: {}",
        summary.mean_user_us
    );
    assert!(summary.mean_total_us > summary.mean_user_us);
    // Load reports flowed too.
    assert!(gpa.node_load(NodeId(1)).is_some(), "load reports arrived");
    assert_no_link_drops(&world, 3);
}

#[test]
fn gpa_correlates_across_tiers_with_clock_skew() {
    // client -> relay -> backend, every node on a skewed NTP clock.
    let clock = |off: i64| ClockSpec {
        offset_ns: off,
        drift_ppm: 0.5,
    };
    let mut world = WorldBuilder::new(9)
        .node_with("client", NodeConfig::default(), clock(150_000))
        .node_with("relay", NodeConfig::default(), clock(-200_000))
        .node_with("backend", NodeConfig::default(), clock(80_000))
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .unwrap();
    let mc = MonitorConfig {
        gpa: GpaConfig {
            clock_error_bound: SimDuration::from_millis(1),
            ..GpaConfig::default()
        },
        ..Default::default()
    };
    let sysprof = SysProf::deploy(&mut world, &[NodeId(1), NodeId(2)], NodeId(3), mc);

    world.spawn(
        NodeId(2),
        "backend",
        Box::new(EchoServer::new(Port(90), 512, SimDuration::from_millis(2))),
    );
    world.spawn(
        NodeId(1),
        "relay",
        Box::new(Relay {
            listen: Port(80),
            backend: NodeId(2),
            backend_port: Port(90),
            backend_sock: None,
            client: None,
        }),
    );
    let done = std::rc::Rc::new(std::cell::Cell::new(0));
    world.spawn(
        NodeId(0),
        "client",
        Box::new(SerialClient {
            server: NodeId(1),
            port: Port(80),
            bytes: 2_000,
            count: 30,
            done: done.clone(),
        }),
    );
    world.run_until(SimTime::from_secs(5));
    assert_eq!(done.get(), 30);

    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    // Interactions were measured at both tiers.
    assert!(
        gpa.class_summary(NodeId(1), Port(80)).is_some(),
        "relay tier measured"
    );
    assert!(
        gpa.class_summary(NodeId(2), Port(90)).is_some(),
        "backend tier measured"
    );

    // Correlation: client->relay interactions contain relay->backend ones,
    // despite each log carrying a differently-skewed wall clock.
    let paths = gpa.correlate();
    assert!(
        paths.len() >= 20,
        "correlated {} end-to-end paths",
        paths.len()
    );
    let p = &paths[0];
    assert_eq!(p.parent.node, NodeId(1));
    assert!(p.children.iter().all(|c| c.node == NodeId(2)));
    // The backend share explains part of the parent latency.
    let parent_us = p.parent.end_us - p.parent.start_us;
    assert!(p.downstream_us() > 0 && p.downstream_us() <= parent_us + 2_000);
    assert_no_link_drops(&world, 4);
}

#[test]
fn procfs_views_render_after_a_run() {
    let mut world = WorldBuilder::new(11)
        .node("client")
        .node("server")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .unwrap();
    let sysprof = SysProf::deploy(
        &mut world,
        &[NodeId(1)],
        NodeId(2),
        MonitorConfig::default(),
    );
    world.spawn(
        NodeId(1),
        "echo",
        Box::new(EchoServer::new(Port(80), 128, SimDuration::from_micros(50))),
    );
    let done = std::rc::Rc::new(std::cell::Cell::new(0));
    world.spawn(
        NodeId(0),
        "client",
        Box::new(SerialClient {
            server: NodeId(1),
            port: Port(80),
            bytes: 1_000,
            count: 20,
            done,
        }),
    );
    world.run_until(SimTime::from_secs(2));

    let lpa = sysprof.lpa(&world, NodeId(1)).unwrap();
    let interactions = procfs::render_interactions(lpa);
    assert!(interactions.lines().count() > 10, "window has content");
    let classes = procfs::render_classes(lpa);
    assert!(
        classes.contains("80"),
        "class table lists port 80:\n{classes}"
    );
    let status = procfs::render_status(NodeId(1), world.kprof(NodeId(1)), lpa);
    assert!(status.contains("events_generated"), "{status}");
    let gpa = sysprof.gpa();
    let dump = gpa.borrow().dump_json();
    let parsed: serde_json::Value = serde_json::from_str(&dump).unwrap();
    assert!(parsed["interaction_count"].as_u64().unwrap() > 0);
}

#[test]
fn deterministic_gpa_state_across_identical_runs() {
    let run = || {
        let mut world = WorldBuilder::new(77)
            .node("client")
            .node("server")
            .node("gpa")
            .full_mesh(LinkSpec::gigabit_lan())
            .build()
            .unwrap();
        let sysprof = SysProf::deploy(
            &mut world,
            &[NodeId(1)],
            NodeId(2),
            MonitorConfig::default(),
        );
        world.spawn(
            NodeId(1),
            "echo",
            Box::new(EchoServer::new(
                Port(80),
                256,
                SimDuration::from_micros(150),
            )),
        );
        let done = std::rc::Rc::new(std::cell::Cell::new(0));
        world.spawn(
            NodeId(0),
            "client",
            Box::new(SerialClient {
                server: NodeId(1),
                port: Port(80),
                bytes: 3_000,
                count: 40,
                done,
            }),
        );
        world.run_until(SimTime::from_secs(3));
        let gpa = sysprof.gpa();
        let dump = gpa.borrow().dump_json();
        dump
    };
    assert_eq!(run(), run(), "bit-identical GPA dumps from the same seed");
}
