//! Chaos tests: the dissemination path (daemon → wire → GPA) must
//! survive packet loss, duplication, reordering and timed partitions on
//! the monitoring links without ever delivering a record twice — and the
//! whole degraded run must replay bit-identically from its seed.

use simcore::{NodeId, SimDuration, SimTime};
use simnet::{LinkFaults, LinkSpec, Port};
use simos::programs::EchoServer;
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::{GpaConfig, MonitorConfig, SysProf};
use testkit::{chaos_report, check_invariants, uniform_loss};

/// A client issuing `count` sequential requests (NFS-proxy-style load).
struct SerialClient {
    server: NodeId,
    port: Port,
    bytes: u64,
    count: u32,
    done: std::rc::Rc<std::cell::Cell<u32>>,
}

impl Program for SerialClient {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.server, self.port);
    }
    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        ctx.send(sock, self.bytes, 1);
    }
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, _m: Message) {
        self.done.set(self.done.get() + 1);
        if self.done.get() < self.count {
            ctx.send(sock, self.bytes, 1);
        } else {
            ctx.exit();
        }
    }
}

/// The NFS-proxy middle tier: forwards requests, relays replies.
struct Relay {
    listen: Port,
    backend: NodeId,
    backend_port: Port,
    backend_sock: Option<SocketId>,
    client: Option<SocketId>,
}

impl Program for Relay {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.listen(self.listen);
        self.backend_sock = Some(ctx.connect(self.backend, self.backend_port));
    }
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, msg: Message) {
        if Some(sock) == self.backend_sock {
            if let Some(client) = self.client {
                ctx.compute(SimDuration::from_micros(30));
                ctx.send(client, msg.bytes, 2);
            }
        } else {
            self.client = Some(sock);
            ctx.compute(SimDuration::from_micros(50));
            ctx.send(self.backend_sock.expect("connected"), msg.bytes, 1);
        }
    }
}

/// Runs the proxy scenario with a hostile monitoring path: every
/// daemon→GPA link loses, duplicates, reorders and jitters packets, and
/// the relay's link to the GPA is partitioned outright for 600ms
/// mid-run. Application links stay clean (the app itself has no
/// transport-level retry), so lost monitoring traffic is purely the
/// reliability protocol's problem. Returns the deterministic report.
fn proxy_under_chaos(seed: u64) -> String {
    let client = NodeId(0);
    let relay = NodeId(1);
    let backend = NodeId(2);
    let gpa_node = NodeId(3);

    let monitoring = LinkFaults {
        loss: 0.03,
        duplicate: 0.02,
        reorder: 0.02,
        jitter: SimDuration::from_micros(200),
        reorder_delay: SimDuration::from_millis(1),
    };
    let plan = uniform_loss(0.0)
        .with_link(relay, gpa_node, monitoring)
        .with_link(backend, gpa_node, monitoring)
        .with_partition(
            vec![relay],
            vec![gpa_node],
            SimTime::from_millis(600),
            SimTime::from_millis(1200),
        );

    let mut world = WorldBuilder::new(seed)
        .node("client")
        .node("relay")
        .node("backend")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .faults(plan)
        .build()
        .unwrap();
    let mc = MonitorConfig {
        gpa: GpaConfig {
            log_deliveries: true,
            ..GpaConfig::default()
        },
        ..MonitorConfig::default()
    };
    let sysprof = SysProf::deploy(&mut world, &[relay, backend], gpa_node, mc);

    world.spawn(
        backend,
        "backend",
        Box::new(EchoServer::new(
            Port(90),
            512,
            SimDuration::from_micros(200),
        )),
    );
    world.spawn(
        relay,
        "relay",
        Box::new(Relay {
            listen: Port(80),
            backend,
            backend_port: Port(90),
            backend_sock: None,
            client: None,
        }),
    );
    let done = std::rc::Rc::new(std::cell::Cell::new(0));
    world.spawn(
        client,
        "client",
        Box::new(SerialClient {
            server: relay,
            port: Port(80),
            bytes: 2_000,
            count: 120,
            done: done.clone(),
        }),
    );
    // Long tail after the partition heals so backed-off retransmits and
    // the final ACK exchange drain completely.
    world.run_until(SimTime::from_secs(6));
    assert_eq!(done.get(), 120, "application finished despite the chaos");

    let gpa = sysprof.gpa();
    {
        let g = gpa.borrow();

        // The network really was hostile.
        let faults = world.network().fault_stats();
        assert!(faults.injected_losses > 0, "losses injected: {faults:?}");
        assert!(faults.partition_drops > 0, "partition dropped: {faults:?}");
        assert!(faults.duplicates > 0, "duplicates injected: {faults:?}");
        // And its books balance exactly: every packet offered to the
        // injector either reached a receiver (possibly as an extra
        // duplicate copy) or is accounted to a specific loss cause.
        assert_eq!(
            faults.packets_offered + faults.duplicates,
            faults.total_losses() + faults.delivered_copies,
            "fault accounting must balance exactly: {faults:?}"
        );
        assert!(faults.balances(), "balances() agrees: {faults:?}");

        // The protocol noticed and repaired it.
        let gs = g.gpa_stats();
        assert!(gs.gaps_detected > 0, "loss opened gaps: {gs:?}");
        assert_eq!(
            gs.gaps_detected,
            gs.gaps_recovered + gs.gaps_abandoned,
            "every gap was retransmitted or explicitly abandoned: {gs:?}"
        );
        assert!(gs.duplicate_batches > 0, "dedup exercised: {gs:?}");
        let retransmits: u64 = [relay, backend]
            .iter()
            .filter_map(|&n| sysprof.daemon_stats(n))
            .map(|d| d.retransmits)
            .sum();
        assert!(retransmits > 0, "daemons retransmitted");
        let shared_bytes: u64 = [relay, backend]
            .iter()
            .filter_map(|&n| sysprof.daemon_stats(n))
            .map(|d| d.resend_bytes_shared)
            .sum();
        assert!(
            shared_bytes > 0,
            "every retransmit was served from the shared resend buffers"
        );

        // Delivery invariants: exactly-once, in-order, fully converged.
        let distinct = check_invariants(&g);
        assert!(
            distinct >= 100,
            "GPA saw most interactions despite 3% loss + partition: {distinct}"
        );
        assert_eq!(g.decode_failures(), 0, "no corrupted batches ingested");
    }
    chaos_report(&world, &sysprof)
}

#[test]
fn nfs_proxy_survives_loss_duplication_and_partition() {
    let report = proxy_under_chaos(1234);
    assert!(report.contains("gaps_detected"), "report digest:\n{report}");
}

#[test]
fn chaos_run_replays_bit_identically_from_the_same_seed() {
    assert_eq!(
        proxy_under_chaos(99),
        proxy_under_chaos(99),
        "same seed + same fault plan = byte-identical run"
    );
}

#[test]
fn crashed_and_restarted_node_resumes_publishing() {
    let run = |seed: u64| {
        let client = NodeId(0);
        let server = NodeId(1);
        let gpa_node = NodeId(2);
        // 2% loss on the monitoring link, plus the monitored server
        // fail-stops at 800ms and comes back at 1.2s.
        let plan = uniform_loss(0.0)
            .with_link(server, gpa_node, LinkFaults::lossy(0.02))
            .with_crash(
                server,
                SimTime::from_millis(800),
                Some(SimTime::from_millis(1200)),
            );
        let mut world = WorldBuilder::new(seed)
            .node("client")
            .node("server")
            .node("gpa")
            .full_mesh(LinkSpec::gigabit_lan())
            .faults(plan)
            .build()
            .unwrap();
        let mc = MonitorConfig {
            gpa: GpaConfig {
                log_deliveries: true,
                ..GpaConfig::default()
            },
            ..MonitorConfig::default()
        };
        let sysprof = SysProf::deploy(&mut world, &[server], gpa_node, mc);
        world.spawn(
            server,
            "echo",
            Box::new(EchoServer::new(
                Port(80),
                256,
                SimDuration::from_micros(100),
            )),
        );
        let done = std::rc::Rc::new(std::cell::Cell::new(0));
        world.spawn(
            client,
            "client",
            Box::new(SerialClient {
                server,
                port: Port(80),
                bytes: 2_000,
                count: 1_000, // will be cut short by the crash
                done,
            }),
        );
        world.run_until(SimTime::from_millis(900));
        assert!(world.node_is_down(server), "server is mid-outage");
        world.run_until(SimTime::from_secs(4));
        assert!(!world.node_is_down(server), "server restarted");
        let gpa = sysprof.gpa();
        {
            let g = gpa.borrow();
            check_invariants(&g);
            // The warm-restarted daemon kept its streams going: load
            // reports span the outage.
            let d = sysprof.daemon_stats(server).expect("daemon stats");
            assert!(d.loads_published > 0, "daemon resumed publishing: {d:?}");
            assert!(g.node_load(server).is_some(), "GPA heard from the server");
            let faults = world.network().fault_stats();
            assert!(
                faults.balances(),
                "fault accounting balances across the crash window: {faults:?}"
            );
        }
        chaos_report(&world, &sysprof)
    };
    assert_eq!(run(7), run(7), "crash/restart replays deterministically");
}
