//! Golden serialization snapshots for every scenario result type.
//!
//! The JSON wire shape of these structs is consumed by the bench
//! harness, the figures pipeline, and anything parsing experiment
//! reports — so field names, field order, and number formatting are a
//! contract. Each test hand-builds a representative value and pins its
//! exact serialized text; renaming, reordering, or retyping a field
//! fails the snapshot.

use simcore::SimDuration;
use sysprof_apps::rubis::ClassOutcome;
use sysprof_apps::{
    AllreduceResult, CdnResult, Diagnosis, FanoutResult, IperfResult, KvStoreResult, LinpackResult,
    RubisResult, StorageResult,
};

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serializable")
}

#[test]
fn iperf_result_snapshot() {
    let v = IperfResult {
        goodput_mbps: 810.5,
        receiver_cpu_utilization: 0.97,
        ring_drops: 12,
        overhead_fraction: 0.13,
        monitor_bytes_sent: 4096,
    };
    assert_eq!(
        json(&v),
        r#"{"goodput_mbps":810.5,"receiver_cpu_utilization":0.97,"ring_drops":12,"overhead_fraction":0.13,"monitor_bytes_sent":4096}"#
    );
}

#[test]
fn linpack_result_snapshot() {
    let v = LinpackResult {
        mflops: 1391.0,
        elapsed: SimDuration::from_secs(10),
        overhead_fraction: 0.001,
        events_generated: 42,
    };
    assert_eq!(
        json(&v),
        r#"{"mflops":1391.0,"elapsed":10000000000,"overhead_fraction":0.001,"events_generated":42}"#
    );
}

#[test]
fn rubis_result_snapshot() {
    let class = |rps: f64| ClassOutcome {
        mean_rps: rps,
        first_half_rps: rps + 10.0,
        second_half_rps: rps - 10.0,
        completed: 2900,
        dropped: 55,
        violations: 3,
        series: vec![(1.0, 150.0), (2.0, 148.0)],
    };
    let v = RubisResult {
        bid: class(145.5),
        comment: class(145.0),
        total_rps: 290.5,
        server_overhead_fraction: 0.015,
    };
    assert_eq!(
        json(&v),
        concat!(
            r#"{"bid":{"mean_rps":145.5,"first_half_rps":155.5,"second_half_rps":135.5,"completed":2900,"dropped":55,"violations":3,"series":[[1.0,150.0],[2.0,148.0]]},"#,
            r#""comment":{"mean_rps":145.0,"first_half_rps":155.0,"second_half_rps":135.0,"completed":2900,"dropped":55,"violations":3,"series":[[1.0,150.0],[2.0,148.0]]},"#,
            r#""total_rps":290.5,"server_overhead_fraction":0.015}"#
        )
    );
}

#[test]
fn storage_result_snapshot() {
    let v = StorageResult {
        proxy_user_ms: 0.4,
        proxy_kernel_ms: 1.2,
        backend_kernel_ms: 14.0,
        proxy_interactions: 800,
        backend_interactions: 400,
        requests_completed: 820,
        network_rtt_ms: 0.21,
        proxy_overhead_fraction: 0.02,
    };
    assert_eq!(
        json(&v),
        concat!(
            r#"{"proxy_user_ms":0.4,"proxy_kernel_ms":1.2,"backend_kernel_ms":14.0,"#,
            r#""proxy_interactions":800,"backend_interactions":400,"requests_completed":820,"#,
            r#""network_rtt_ms":0.21,"proxy_overhead_fraction":0.02}"#
        )
    );
}

#[test]
fn kvstore_result_snapshot() {
    let v = KvStoreResult {
        ops_completed: 3476,
        per_shard_ops: vec![1492, 828, 649, 507],
        hot_shard: 0,
        hot_shard_share: 0.43,
        p50_us: 395,
        p95_us: 520,
        max_queue_depth: vec![1, 1, 1, 1],
        retries: 0,
    };
    assert_eq!(
        json(&v),
        concat!(
            r#"{"ops_completed":3476,"per_shard_ops":[1492,828,649,507],"hot_shard":0,"#,
            r#""hot_shard_share":0.43,"p50_us":395,"p95_us":520,"max_queue_depth":[1,1,1,1],"retries":0}"#
        )
    );
}

#[test]
fn fanout_result_snapshot() {
    let v = FanoutResult {
        requests_completed: 460,
        rpcs_per_request: 14,
        p50_us: 3063,
        p99_us: 32313,
        retries: 0,
    };
    assert_eq!(
        json(&v),
        r#"{"requests_completed":460,"rpcs_per_request":14,"p50_us":3063,"p99_us":32313,"retries":0}"#
    );
}

#[test]
fn allreduce_result_snapshot() {
    let v = AllreduceResult {
        iterations_completed: 8,
        chunks_reduced: vec![48, 48, 48, 48],
        finished_at_us: 49992,
        mean_iteration_us: 6249,
        retries: 0,
    };
    assert_eq!(
        json(&v),
        concat!(
            r#"{"iterations_completed":8,"chunks_reduced":[48,48,48,48],"#,
            r#""finished_at_us":49992,"mean_iteration_us":6249,"retries":0}"#
        )
    );
}

#[test]
fn cdn_result_snapshot() {
    let v = CdnResult {
        requests_completed: 133,
        hits: 93,
        misses: 40,
        hit_ratio: 0.7,
        coalesced: 4,
        origin_fetches: 36,
        p50_us: 186,
        p95_us: 1910,
        retries: 0,
    };
    assert_eq!(
        json(&v),
        concat!(
            r#"{"requests_completed":133,"hits":93,"misses":40,"hit_ratio":0.7,"coalesced":4,"#,
            r#""origin_fetches":36,"p50_us":186,"p95_us":1910,"retries":0}"#
        )
    );
}

#[test]
fn diagnosis_snapshot() {
    let v = Diagnosis {
        verdict: "hot shard 0: 43% of shard traffic".into(),
        evidence: vec!["shard 0: 1492 interactions".into()],
    };
    assert_eq!(
        json(&v),
        r#"{"verdict":"hot shard 0: 43% of shard traffic","evidence":["shard 0: 1492 interactions"]}"#
    );
}
