//! Sharded GPA digest evaluation over a real scenario workload.
//!
//! The shard-safety analysis (`ecode::analysis::merge`) promises that a
//! fully-mergeable digest program evaluated as K partitioned replicas
//! folds back to *bit-identical* statics versus one sequential
//! instance. The unit sweeps prove this for generated programs and
//! synthetic events; this test closes the loop end-to-end: a kvstore
//! scenario produces thousands of genuine interaction records, and the
//! same digest runs sequentially and sharded over that record stream.
//!
//! The numbers asserted here back the sharded-vs-sequential row in
//! EXPERIMENTS.md.

use sysprof::{Gpa, GpaConfig, InteractionRecord};
use sysprof_apps::{KvStoreScenario, ScenarioSpec};

/// A representative GPA digest: request volume, byte totals, worst
/// service time, and an SLO-breach counter — each a different lattice
/// class (counter, counter, max-fold, gated counter).
const DIGEST: &str = "
    static int requests = 0;
    static int bytes = 0;
    static int worst_us = 0;
    static int slo_misses = 0;
    requests = requests + 1;
    bytes = bytes + req_bytes + resp_bytes;
    worst_us = max(worst_us, end_us - start_us);
    if (end_us - start_us > 1000) { slo_misses = slo_misses + 1; }
    return requests;
";

fn kvstore_records() -> Vec<InteractionRecord> {
    let spec = KvStoreScenario::default();
    let run = spec.run(7);
    let gpa = run.sysprof.gpa();
    let gpa = gpa.borrow();
    gpa.interactions().to_vec()
}

fn digest_gpa(records: &[InteractionRecord], shards: usize) -> Gpa {
    let mut gpa = Gpa::new(GpaConfig::default());
    gpa.install_digest(DIGEST, shards).expect("digest verifies");
    for rec in records {
        gpa.ingest_record(rec);
    }
    gpa
}

#[test]
fn kvstore_digest_folds_shards_to_the_sequential_answer() {
    let records = kvstore_records();
    assert!(
        records.len() > 3_000,
        "the scenario produced a real workload ({} records)",
        records.len()
    );

    let sequential = digest_gpa(&records, 1);
    for k in [2usize, 3, 8] {
        let sharded = digest_gpa(&records, k);
        let stats = sharded.digest_stats().unwrap();
        assert!(stats.sharded, "plan admitted sharding: {stats:?}");
        assert_eq!(stats.shards, k);
        assert_eq!(stats.events, records.len() as u64);
        assert_eq!(stats.aborted, 0);
        assert_eq!(stats.skipped, 0);
        assert!(
            stats.per_shard_events.iter().filter(|&&n| n > 0).count() > 1,
            "flow partitioning spread the records: {stats:?}"
        );
        for name in ["requests", "bytes", "worst_us", "slo_misses"] {
            assert_eq!(
                sharded.digest_global(name),
                sequential.digest_global(name),
                "K={k}: \"{name}\" must fold bit-identically"
            );
        }
    }

    // The measured values backing the EXPERIMENTS.md row (visible with
    // `cargo test --test sharded_gpa -- --nocapture`).
    for name in ["requests", "bytes", "worst_us", "slo_misses"] {
        println!(
            "kvstore digest {name} = {:?} (identical for K in {{1, 2, 3, 8}})",
            sequential.digest_global(name).unwrap()
        );
    }

    // Pin the sequential answers themselves: the digest is only useful
    // if it reports the workload, not just self-consistency.
    let requests = sequential.digest_global("requests").unwrap();
    assert_eq!(requests, ecode::Value::Int(records.len() as i64));
    let ecode::Value::Int(bytes) = sequential.digest_global("bytes").unwrap() else {
        panic!("bytes is an int static");
    };
    assert!(bytes > 0, "the kvstore moved bytes");
}

#[test]
fn sharded_digest_is_replay_stable() {
    // Same records, same shard count, two independent digest GPAs:
    // shard placement (FNV-1a of the flow key) and the fold must both
    // be deterministic, or replay debugging of a sharded GPA is dead.
    let records = kvstore_records();
    let a = digest_gpa(&records, 8);
    let b = digest_gpa(&records, 8);
    assert_eq!(
        a.digest_stats().unwrap().per_shard_events,
        b.digest_stats().unwrap().per_shard_events,
        "shard placement replays identically"
    );
    for name in ["requests", "bytes", "worst_us", "slo_misses"] {
        assert_eq!(a.digest_global(name), b.digest_global(name));
    }
}
