//! End-to-end test of the ARM-hints extension: pipelined (interleaved)
//! requests on one flow are inseparable for the black-box monitor — the
//! paper's §2 caveat — but separate cleanly when the application opts
//! into ARM-style tagging.

use simcore::{NodeId, SimDuration, SimTime};
use simnet::{LinkSpec, Port};
use simos::programs::EchoServer;
use simos::{Message, ProcCtx, Program, SocketId, WorldBuilder};
use sysprof::{LpaConfig, MonitorConfig, SysProf};

/// Keeps `depth` requests in flight on one socket (pipelining).
struct PipelinedClient {
    server: NodeId,
    depth: usize,
    total: u32,
    sent: u32,
    received: std::rc::Rc<std::cell::Cell<u32>>,
    sock: Option<SocketId>,
}

impl Program for PipelinedClient {
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.connect(self.server, Port(80));
    }
    fn on_connected(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId) {
        self.sock = Some(sock);
        for _ in 0..self.depth {
            ctx.send(sock, 2_000, 1);
            self.sent += 1;
        }
    }
    fn on_message(&mut self, ctx: &mut ProcCtx<'_>, sock: SocketId, _m: Message) {
        self.received.set(self.received.get() + 1);
        if self.sent < self.total {
            ctx.send(sock, 2_000, 1);
            self.sent += 1;
        }
    }
}

/// Returns (responses received, LPA records, mean interaction total µs).
fn run(use_arm: bool) -> (u32, u64, f64) {
    let mut world = WorldBuilder::new(31)
        .node("client")
        .node("server")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .unwrap();
    let mc = MonitorConfig {
        lpa: LpaConfig {
            use_arm_hints: use_arm,
            ..LpaConfig::default()
        },
        ..MonitorConfig::default()
    };
    let sysprof = SysProf::deploy(&mut world, &[NodeId(1)], NodeId(2), mc);

    // Slow enough that pipelined requests genuinely queue at the server.
    let server_pid = world.spawn(
        NodeId(1),
        "echo",
        Box::new(EchoServer::new(Port(80), 300, SimDuration::from_millis(2))),
    );
    let received = std::rc::Rc::new(std::cell::Cell::new(0));
    let client_pid = world.spawn(
        NodeId(0),
        "pipelined",
        Box::new(PipelinedClient {
            server: NodeId(1),
            depth: 4,
            total: 60,
            sent: 0,
            received: received.clone(),
            sock: None,
        }),
    );
    if use_arm {
        // Both applications "link against ARM": their packets carry
        // correlators.
        world.enable_arm(NodeId(0), client_pid);
        world.enable_arm(NodeId(1), server_pid);
    }
    world.run_until(SimTime::from_secs(5));

    let records = sysprof
        .lpa(&world, NodeId(1))
        .expect("deployed")
        .records_completed();
    let mean_total = sysprof
        .gpa()
        .borrow()
        .class_summary(NodeId(1), Port(80))
        .map(|s| s.mean_total_us)
        .unwrap_or(0.0);
    (received.get(), records, mean_total)
}

#[test]
fn black_box_mispairs_pipelined_requests() {
    // With depth-4 pipelining and 2 ms service, the true per-request
    // latency is ~4 service times (queueing behind the pipeline) ≈ 8 ms.
    // The black-box monitor pairs each arriving request with the *next*
    // response — which answers an earlier request — so its measured spans
    // are mostly one service gap (~2 ms): systematically wrong.
    let (received, _records, mean_total) = run(false);
    assert_eq!(received, 60, "application completed");
    assert!(
        mean_total < 5_000.0,
        "black-box underestimates pipelined latency: measured {mean_total} µs"
    );
}

#[test]
fn arm_hints_recover_true_pipelined_latency() {
    let (received, records, mean_total) = run(true);
    assert_eq!(received, 60);
    assert!(
        (55..=60).contains(&records),
        "ARM hints separate (nearly) all 60 interactions: got {records}"
    );
    assert!(
        mean_total > 6_000.0,
        "true per-request latency includes pipeline queueing: {mean_total} µs"
    );
    // And the two monitors disagree by design.
    let (_, _, blackbox_mean) = run(false);
    assert!(
        mean_total > blackbox_mean * 2.0,
        "ARM {mean_total} vs black-box {blackbox_mean}"
    );
}

#[test]
fn arm_interactions_have_sane_per_request_latency() {
    let mut world = WorldBuilder::new(32)
        .node("client")
        .node("server")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .unwrap();
    let mc = MonitorConfig {
        lpa: LpaConfig {
            use_arm_hints: true,
            ..LpaConfig::default()
        },
        ..MonitorConfig::default()
    };
    let sysprof = SysProf::deploy(&mut world, &[NodeId(1)], NodeId(2), mc);
    let server_pid = world.spawn(
        NodeId(1),
        "echo",
        Box::new(EchoServer::new(
            Port(80),
            300,
            SimDuration::from_micros(200),
        )),
    );
    let received = std::rc::Rc::new(std::cell::Cell::new(0));
    let client_pid = world.spawn(
        NodeId(0),
        "pipelined",
        Box::new(PipelinedClient {
            server: NodeId(1),
            depth: 3,
            total: 30,
            sent: 0,
            received,
            sock: None,
        }),
    );
    world.enable_arm(NodeId(0), client_pid);
    world.enable_arm(NodeId(1), server_pid);
    world.run_until(SimTime::from_secs(3));

    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    let summary = gpa
        .class_summary(NodeId(1), Port(80))
        .expect("interactions observed");
    // Depth-3 pipeline, 200 µs service: true spans are sub-ms and every
    // request gets its own record.
    assert!(
        summary.mean_total_us < 5_000.0,
        "per-request spans, not merged batches: mean {} µs",
        summary.mean_total_us
    );
    assert!(summary.count >= 25);
}
