//! Remote GPA queries over the simulated wire: "Other nodes in the system
//! can query the GPA" (§2).

use simcore::{NodeId, SimDuration, SimTime};
use simnet::{LinkSpec, Port};
use simos::programs::{EchoServer, OneShotSender};
use simos::WorldBuilder;
use sysprof::{GpaAnswer, GpaQuery, MonitorConfig, QueryClient, SysProf};

fn monitored_world() -> (simos::World, SysProf) {
    let mut world = WorldBuilder::new(21)
        .node("client")
        .node("server")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .unwrap();
    let sysprof = SysProf::deploy(
        &mut world,
        &[NodeId(1)],
        NodeId(2),
        MonitorConfig::default(),
    );
    world.spawn(
        NodeId(1),
        "echo",
        Box::new(EchoServer::new(
            Port(80),
            256,
            SimDuration::from_micros(100),
        )),
    );
    world.spawn(
        NodeId(0),
        "client",
        Box::new(OneShotSender::new(NodeId(1), Port(80), 20_000)),
    );
    (world, sysprof)
}

#[test]
fn remote_node_queries_interaction_count() {
    let (mut world, _sysprof) = monitored_world();
    world.run_until(SimTime::from_secs(1));

    let mut client = QueryClient::install(&mut world, NodeId(0), NodeId(2));
    let id = client.send(&mut world, GpaQuery::InteractionCount);
    assert!(client.answer(id).is_none(), "the answer takes network time");

    world.run_for(SimDuration::from_millis(50));
    match client.answer(id) {
        Some(GpaAnswer::InteractionCount(n)) => assert!(n >= 1, "count {n}"),
        other => panic!("unexpected answer {other:?}"),
    }
}

#[test]
fn remote_node_queries_class_summary_and_load() {
    let (mut world, _sysprof) = monitored_world();
    world.run_until(SimTime::from_secs(1));

    let mut client = QueryClient::install(&mut world, NodeId(0), NodeId(2));
    let q1 = client.send(
        &mut world,
        GpaQuery::ClassSummary {
            node: NodeId(1),
            class_port: 80,
        },
    );
    let q2 = client.send(&mut world, GpaQuery::NodeLoad { node: NodeId(1) });
    let q3 = client.send(
        &mut world,
        GpaQuery::ClassSummary {
            node: NodeId(1),
            class_port: 9_999, // never used as a service class
        },
    );
    world.run_for(SimDuration::from_millis(50));

    match client.answer(q1) {
        Some(GpaAnswer::ClassSummary(Some(s))) => {
            assert_eq!(s.node, NodeId(1));
            assert!(s.count >= 1);
            assert!(s.mean_total_us > 0.0);
        }
        other => panic!("unexpected answer {other:?}"),
    }
    match client.answer(q2) {
        Some(GpaAnswer::NodeLoad(Some(view))) => {
            assert!(view.reports >= 1);
        }
        other => panic!("unexpected answer {other:?}"),
    }
    match client.answer(q3) {
        Some(GpaAnswer::ClassSummary(None)) => {}
        other => panic!("unexpected answer {other:?}"),
    }
    assert_eq!(client.answers_received(), 3);
}

#[test]
fn all_class_summaries_round_trip() {
    let (mut world, _sysprof) = monitored_world();
    world.run_until(SimTime::from_secs(1));
    let mut client = QueryClient::install(&mut world, NodeId(0), NodeId(2));
    let id = client.send(&mut world, GpaQuery::AllClassSummaries);
    world.run_for(SimDuration::from_millis(50));
    match client.answer(id) {
        Some(GpaAnswer::AllClassSummaries(all)) => {
            assert!(!all.is_empty());
            assert!(all.iter().any(|s| s.class_port == Port(80)));
        }
        other => panic!("unexpected answer {other:?}"),
    }
}
