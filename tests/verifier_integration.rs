//! The verifier at the system boundaries: CPA installation and remote
//! filter subscription both reject bad E-Code *before* it touches
//! anything — no Kprof registration, no wire shipping — and the
//! rejection is observable (structured NACKs, daemon counters) rather
//! than silent.

use kprof::EventMask;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::LinkSpec;
use simos::programs::{EchoServer, OneShotSender};
use simos::WorldBuilder;
use sysprof::{MonitorConfig, SysProf, INTERACTION_TOPIC};

fn small_world(nodes: u32) -> simos::World {
    let mut b = WorldBuilder::new(1);
    for i in 0..nodes {
        b = b.node(&format!("n{i}"));
    }
    b.full_mesh(LinkSpec::gigabit_lan()).build().expect("world")
}

/// A loop-free program whose longest path still exceeds the default
/// 2000-instruction CPA budget.
fn over_budget_source() -> String {
    let mut src = String::from("static int s = 0;\n");
    for _ in 0..700 {
        src.push_str("s = s + 1;\n");
    }
    src.push_str("return s;\n");
    src
}

#[test]
fn install_cpa_rejects_over_budget_program_before_registration() {
    let mut world = small_world(2);
    let sysprof = SysProf::deploy(
        &mut world,
        &[NodeId(0)],
        NodeId(1),
        MonitorConfig::default(),
    );

    let big = over_budget_source();
    let err = sysprof
        .install_cpa(&mut world, NodeId(0), "hog", &big, EventMask::ALL)
        .unwrap_err();
    assert!(
        err.0.diagnostics.iter().any(|d| d.code == "E0003"),
        "expected a fuel-bound rejection, got {:#?}",
        err.0.diagnostics
    );
    assert!(
        err.to_string().contains("exceeds the host budget 2000"),
        "got: {err}"
    );

    // Proof nothing was registered: analyzer ids are sequential, and the
    // id a rejected program would have taken goes to the next success.
    let a = sysprof
        .install_cpa(
            &mut world,
            NodeId(0),
            "a",
            "return size;",
            EventMask::NETWORK,
        )
        .expect("valid CPA installs");
    sysprof
        .install_cpa(&mut world, NodeId(0), "hog2", &big, EventMask::ALL)
        .unwrap_err();
    let b = sysprof
        .install_cpa(
            &mut world,
            NodeId(0),
            "b",
            "return size;",
            EventMask::NETWORK,
        )
        .expect("valid CPA installs");
    assert_eq!(
        b.0,
        a.0 + 1,
        "a rejected program must not consume an analyzer id"
    );
}

#[test]
fn install_cpa_rejects_guaranteed_trap_with_line_number() {
    let mut world = small_world(2);
    let sysprof = SysProf::deploy(
        &mut world,
        &[NodeId(0)],
        NodeId(1),
        MonitorConfig::default(),
    );
    let err = sysprof
        .install_cpa(
            &mut world,
            NodeId(0),
            "trap",
            "int ok = 1;\nreturn size / 0;",
            EventMask::NETWORK,
        )
        .unwrap_err();
    let d = err
        .0
        .diagnostics
        .iter()
        .find(|d| d.code == "E0001")
        .expect("guaranteed trap diagnosed");
    assert_eq!(d.line, 2);
}

#[test]
fn bad_remote_filter_nacks_are_observable_at_daemon_and_gpa() {
    let mut world = small_world(2);
    let config = MonitorConfig {
        interaction_filter: Some("return kernel_in_us / 0;".into()),
        ..Default::default()
    };
    let sysprof = SysProf::deploy(&mut world, &[NodeId(0)], NodeId(1), config);
    world.run_until(SimTime::from_millis(100));

    // The daemon counted the rejection (the unfiltered load subscription
    // still succeeded) …
    let stats = sysprof.daemon_stats(NodeId(0)).expect("stats");
    assert_eq!(stats.subscribes_rejected, 1, "{stats:#?}");
    assert_eq!(stats.subscribes_ok, 1, "{stats:#?}");

    // … and the NACK travelled back over the wire to the GPA with the
    // verifier's diagnostics attached.
    let gpa = sysprof.gpa();
    let gpa = gpa.borrow();
    let failures = gpa.subscription_failures();
    assert_eq!(failures.len(), 1, "{failures:#?}");
    assert_eq!(failures[0].topic, INTERACTION_TOPIC);
    assert!(
        failures[0].diagnostics.iter().any(|d| d.contains("E0001")),
        "NACK should carry the division-by-zero diagnostic: {:#?}",
        failures[0].diagnostics
    );
}

#[test]
fn verified_filter_ships_records_and_exposes_its_fuel_bound() {
    let mut world = small_world(3);
    world.spawn(
        NodeId(1),
        "echo",
        Box::new(EchoServer::new(
            simnet::Port(80),
            512,
            SimDuration::from_micros(100),
        )),
    );
    world.spawn(
        NodeId(0),
        "client",
        Box::new(OneShotSender::new(NodeId(1), simnet::Port(80), 2_000)),
    );
    let config = MonitorConfig {
        interaction_filter: Some("return req_bytes >= 0;".into()),
        ..Default::default()
    };
    let sysprof = SysProf::deploy(&mut world, &[NodeId(1)], NodeId(2), config);
    world.run_until(SimTime::from_secs(2));

    let stats = sysprof.daemon_stats(NodeId(1)).expect("stats");
    assert_eq!(stats.subscribes_rejected, 0, "{stats:#?}");
    assert_eq!(stats.subscribes_ok, 2, "{stats:#?}");
    assert!(
        stats.filter_fuel_bound > 0,
        "the proven per-record bound should be visible: {stats:#?}"
    );
    assert!(sysprof.gpa().borrow().interaction_count() >= 1);
    assert!(sysprof.gpa().borrow().subscription_failures().is_empty());
}
