//! Integration tests of the overhead/granularity machinery: the
//! controller's runtime knobs, the daemon's overwrite semantics, and the
//! perturbation ordering between monitoring levels.

use kprof::EventMask;
use simcore::{NodeId, SimDuration, SimTime};
use simnet::{LinkSpec, Port};
use simos::WorldBuilder;
use sysprof::{Controller, LpaConfig, MonitorConfig, MonitorLevel, SysProf};
use sysprof_apps::iperf::{IperfClient, IperfServer};

fn iperf_world(seed: u64) -> (simos::World, SysProf) {
    let mut world = WorldBuilder::new(seed)
        .node("sender")
        .node("receiver")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .unwrap();
    let sysprof = SysProf::deploy(
        &mut world,
        &[NodeId(1)],
        NodeId(2),
        MonitorConfig::default(),
    );
    world.spawn(NodeId(1), "srv", Box::new(IperfServer::new(Port(5001))));
    world.spawn(
        NodeId(0),
        "cli",
        Box::new(IperfClient::new(
            NodeId(1),
            Port(5001),
            64 * 1024,
            8,
            SimDuration::from_millis(500),
        )),
    );
    (world, sysprof)
}

#[test]
fn monitoring_levels_order_overhead() {
    let overhead_at = |level: MonitorLevel| {
        let (mut world, sysprof) = iperf_world(3);
        let lpa = sysprof.lpa_id(NodeId(1)).unwrap();
        Controller::new().set_level(&mut world, NodeId(1), lpa, level);
        world.run_until(SimTime::from_secs(1));
        sysprof.overhead_fraction(&world, NodeId(1))
    };
    let off = overhead_at(MonitorLevel::Off);
    let class = overhead_at(MonitorLevel::ClassAggregates);
    let full = overhead_at(MonitorLevel::Full);
    assert!(off < 0.005, "off {off}");
    assert!(class > off, "class {class} vs off {off}");
    assert!(full >= class, "full {full} vs class {class}");
    assert!(
        full > 0.01,
        "full monitoring is >1% under packet load: {full}"
    );
}

#[test]
fn controller_changes_take_effect_mid_run() {
    let (mut world, sysprof) = iperf_world(4);
    let lpa = sysprof.lpa_id(NodeId(1)).unwrap();
    let ctl = Controller::new();

    // First quarter with monitoring off…
    ctl.set_level(&mut world, NodeId(1), lpa, MonitorLevel::Off);
    world.run_until(SimTime::from_millis(125));
    let before = world.kprof(NodeId(1)).stats().events_generated;
    // Only the spawn-time ProcessCreate events (emitted before the
    // controller turned monitoring off) may exist.
    assert!(before <= 2, "nothing generated while off: {before}");

    // …switch it on in flight.
    ctl.set_level(&mut world, NodeId(1), lpa, MonitorLevel::Full);
    world.run_until(SimTime::from_millis(250));
    let after = world.kprof(NodeId(1)).stats().events_generated;
    assert!(after > 1_000, "events flow after enabling: {after}");

    // …and back off again.
    ctl.set_level(&mut world, NodeId(1), lpa, MonitorLevel::Off);
    let frozen = world.kprof(NodeId(1)).stats().events_generated;
    world.run_until(SimTime::from_millis(375));
    let later = world.kprof(NodeId(1)).stats().events_generated;
    assert_eq!(frozen, later, "no further events after disabling");
}

#[test]
fn global_mask_gates_event_classes() {
    let (mut world, _sysprof) = iperf_world(5);
    Controller::new().set_global_mask(&mut world, NodeId(1), EventMask::SCHEDULING);
    world.run_until(SimTime::from_secs(1));
    let stats = world.kprof(NodeId(1)).stats();
    // Network events (the bulk) were suppressed by the gate.
    assert!(
        stats.events_suppressed > stats.events_generated,
        "suppressed {} vs generated {}",
        stats.events_suppressed,
        stats.events_generated
    );
}

#[test]
fn slow_daemon_overwrites_lpa_buffers() {
    // A tiny LPA window with a glacial daemon flush interval: buffers fill
    // faster than they are drained, and the paper's overwrite semantics
    // kick in ("if the data is not picked up in a timely fashion, it may
    // be overwritten").
    let mut world = WorldBuilder::new(6)
        .node("client")
        .node("server")
        .node("gpa")
        .full_mesh(LinkSpec::gigabit_lan())
        .build()
        .unwrap();
    let mut mc = MonitorConfig {
        lpa: LpaConfig {
            window: 4,
            ..LpaConfig::default()
        },
        ..MonitorConfig::default()
    };
    mc.daemon.flush_interval = SimDuration::from_secs(30); // effectively never
    let sysprof = SysProf::deploy(&mut world, &[NodeId(1)], NodeId(2), mc);

    // Burst of small interactions to churn the 4-record buffers. The
    // buffer-full daemon wake DOES drain, so make interactions complete
    // faster than wakes propagate by using back-to-back requests.
    world.spawn(
        NodeId(1),
        "echo",
        Box::new(simos::programs::EchoServer::new(
            Port(80),
            64,
            SimDuration::ZERO,
        )),
    );
    struct Burst {
        n: u32,
    }
    impl simos::Program for Burst {
        fn on_start(&mut self, ctx: &mut simos::ProcCtx<'_>) {
            ctx.connect(NodeId(1), Port(80));
        }
        fn on_connected(&mut self, ctx: &mut simos::ProcCtx<'_>, sock: simos::SocketId) {
            ctx.send(sock, 100, 1);
        }
        fn on_message(
            &mut self,
            ctx: &mut simos::ProcCtx<'_>,
            sock: simos::SocketId,
            _m: simos::Message,
        ) {
            self.n += 1;
            if self.n < 400 {
                ctx.send(sock, 100, 1);
            }
        }
    }
    world.spawn(NodeId(0), "burst", Box::new(Burst { n: 0 }));
    world.run_until(SimTime::from_secs(2));

    let lpa = sysprof.lpa(&world, NodeId(1)).unwrap();
    assert!(
        lpa.records_completed() > 300,
        "interactions completed: {}",
        lpa.records_completed()
    );
    // With the daemon draining on buffer-full wakes, most records survive;
    // this asserts the accounting exists and is consistent rather than a
    // specific loss rate.
    let gpa_count = sysprof.gpa().borrow().interaction_count();
    assert!(
        gpa_count + lpa.overwritten() + 8 >= lpa.records_completed() / 2,
        "records are accounted for: gpa {} + overwritten {} of {}",
        gpa_count,
        lpa.overwritten(),
        lpa.records_completed()
    );
}

#[test]
fn facade_installs_cpa_at_runtime() {
    let (mut world, sysprof) = iperf_world(9);
    let cpa = sysprof
        .install_cpa(
            &mut world,
            NodeId(1),
            "pkt-count",
            "static int n = 0; if (kind == 7) { n = n + 1; out(0, n); } return 0;",
            EventMask::NETWORK,
        )
        .expect("valid E-Code");
    // Bad source is rejected with a typed error.
    assert!(sysprof
        .install_cpa(
            &mut world,
            NodeId(1),
            "broken",
            "return nope;",
            EventMask::ALL
        )
        .is_err());
    world.run_until(SimTime::from_secs(1));
    let analyzer = world
        .kprof(NodeId(1))
        .analyzer_as::<sysprof::CpaAnalyzer>(cpa)
        .expect("installed");
    assert!(
        analyzer.output(0).unwrap_or(0.0) > 100.0,
        "packets counted in-kernel"
    );
}

#[test]
fn window_size_is_reconfigurable_at_runtime() {
    let (mut world, sysprof) = iperf_world(8);
    let lpa_id = sysprof.lpa_id(NodeId(1)).unwrap();
    let ctl = Controller::new();
    assert!(ctl.set_window(&mut world, NodeId(1), lpa_id, 16));
    let cfg = ctl.lpa_config(&world, NodeId(1), lpa_id).unwrap();
    assert_eq!(cfg.window, 16);
    // Service-port restriction narrows what gets diagnosed.
    assert!(ctl.set_service_ports(&mut world, NodeId(1), lpa_id, Some(vec![Port(9_000)])));
    world.run_until(SimTime::from_secs(1));
    let lpa = sysprof.lpa(&world, NodeId(1)).unwrap();
    assert_eq!(
        lpa.records_completed(),
        0,
        "iperf traffic (port 5001) filtered out by the port predicate"
    );
}
