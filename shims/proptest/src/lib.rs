//! Minimal `proptest`: the `proptest!` macro plus the strategy
//! combinators the workspace tests use (`any`, ranges, string patterns,
//! `collection::vec`, `option::of`, tuples, `prop_map`). Case streams
//! are deterministic — seeded from the test's module path and name — so
//! failures reproduce exactly across runs and machines. No shrinking:
//! the first failing case is reported as-is.

/// Deterministic per-test random source.
pub mod test_runner {
    /// splitmix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test's full path).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable cross-platform seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { x: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize);

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: round-trip tests compare for equality,
        // which NaN would break. Raw bit patterns give wide coverage
        // (subnormals, huge magnitudes) — just reject NaN/inf.
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        loop {
            let v = f32::from_bits(rng.next_u64() as u32);
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}
range_int_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// `&str` as a regex-ish string strategy. Only the `X{m,n}` length-spec
/// shape is interpreted (e.g. `".{0,64}"`); the generated characters
/// are printable ASCII. Anything else falls back to length 0..=16.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_len_spec(self).unwrap_or((0, 16));
        let len = if max > min {
            min + rng.below((max - min + 1) as u64) as usize
        } else {
            min
        };
        (0..len)
            .map(|_| (0x20 + rng.below(0x5f) as u8) as char)
            .collect()
    }
}

fn parse_len_spec(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || close <= open {
        return None;
    }
    let body = &pattern[open + 1..close];
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((lo, hi))
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable size arguments for [`vec`].
    pub trait SizeRange {
        /// Lower and upper (inclusive) bounds on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vector of values from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Choice strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// One of `options`, uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`, `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` from `inner` most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Number of cases each `proptest!` test runs.
pub const CASES: u32 = 64;

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, collection, option, prop_assert, prop_assert_eq, prop_assume, proptest, sample,
        Strategy,
    };
    /// Path alias so `prop::option::of(...)` and friends resolve.
    pub use crate as prop;
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..$crate::CASES {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // Rejected case: count it as vacuously passing (no retry).
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps(x in 1usize..200, y in -1000i64..1000, s in ".{0,8}") {
            prop_assert!((1..200).contains(&x));
            prop_assert!((-1000..1000).contains(&y));
            prop_assert!(s.len() <= 8);
        }

        #[test]
        fn vectors_and_options(
            v in prop::collection::vec((0u64..1000, 0u8..2), 0..20),
            o in prop::option::of(any::<u32>()),
        ) {
            prop_assert!(v.len() < 20);
            for (a, b) in &v {
                prop_assert!(*a < 1000 && *b < 2);
            }
            let _ = o;
        }

        #[test]
        fn assume_and_finite_floats(f in any::<f64>(), d in 0.001f64..1e6) {
            prop_assume!(f != 0.0);
            prop_assert!(f.is_finite());
            prop_assert!(d > 0.0, "d = {}", d);
            prop_assert_eq!(f, f);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
