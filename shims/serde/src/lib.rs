//! Minimal `serde`: a self-describing [`Content`] tree data model with
//! `Serialize`/`Deserialize` traits that convert to and from it, plus
//! re-exported derive macros from the shim `serde_derive`. Formats
//! (`serde_json` here) serialize the `Content` tree rather than driving
//! a visitor — a much smaller contract that covers everything the
//! workspace needs.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key/value pairs in insertion order (field declaration order for
    /// derived structs), so output is deterministic.
    Map(Vec<(String, Content)>),
}

/// Types that can render themselves as a [`Content`] tree.
pub trait Serialize {
    /// The value as a content tree.
    fn to_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, with a human-readable error on shape mismatch.
    fn from_content(c: &Content) -> Result<Self, String>;
}

// ---- helpers used by the generated derive code ----

/// Looks up `key` in a map node.
pub fn map_get<'c>(c: &'c Content, key: &str) -> Result<&'c Content, String> {
    match c {
        Content::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`")),
        other => Err(format!("expected map with field `{key}`, got {other:?}")),
    }
}

/// Indexes into a sequence node.
pub fn seq_get(c: &Content, idx: usize) -> Result<&Content, String> {
    match c {
        Content::Seq(items) => items
            .get(idx)
            .ok_or_else(|| format!("sequence too short: no element {idx}")),
        other => Err(format!("expected sequence, got {other:?}")),
    }
}

/// Splits an externally-tagged enum node into `(tag, payload)`.
pub fn enum_tag(c: &Content) -> Result<(&str, Option<&Content>), String> {
    match c {
        Content::Str(s) => Ok((s, None)),
        Content::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(format!("expected enum (string or 1-entry map), got {other:?}")),
    }
}

/// Unwraps the payload of a non-unit enum variant.
pub fn payload<'c>(p: Option<&'c Content>, tag: &str) -> Result<&'c Content, String> {
    p.ok_or_else(|| format!("variant `{tag}` expects a payload"))
}

// ---- Serialize impls ----

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

// ---- Deserialize impls ----

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(c.clone())
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

fn as_u64(c: &Content) -> Result<u64, String> {
    match c {
        Content::U64(v) => Ok(*v),
        Content::I64(v) if *v >= 0 => Ok(*v as u64),
        other => Err(format!("expected unsigned integer, got {other:?}")),
    }
}

fn as_i64(c: &Content) -> Result<i64, String> {
    match c {
        Content::I64(v) => Ok(*v),
        Content::U64(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
        other => Err(format!("expected integer, got {other:?}")),
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = as_u64(c)?;
                <$t>::try_from(v).map_err(|_| {
                    format!("{} out of range for {}", v, stringify!($t))
                })
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = as_i64(c)?;
                <$t>::try_from(v).map_err(|_| {
                    format!("{} out of range for {}", v, stringify!($t))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, String> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

macro_rules! de_tuple {
    ($(($($t:ident $idx:tt),+; $len:expr))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_content(&items[$idx])?,)+))
                    }
                    other => Err(format!(
                        "expected {}-tuple, got {other:?}", $len
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (A 0; 1)
    (A 0, B 1; 2)
    (A 0, B 1, C 2; 3)
    (A 0, B 1, C 2, D 3; 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_content(&7u64.to_content()), Ok(7));
        assert_eq!(i64::from_content(&(-3i64).to_content()), Ok(-3));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(
            Option::<u32>::from_content(&None::<u32>.to_content()),
            Ok(None)
        );
        assert_eq!(
            Vec::<u8>::from_content(&vec![1u8, 2].to_content()),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn map_helpers_report_shape_errors() {
        let m = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert!(map_get(&m, "a").is_ok());
        assert!(map_get(&m, "b").unwrap_err().contains("missing field"));
        assert!(seq_get(&m, 0).is_err());
        assert_eq!(enum_tag(&m).unwrap().0, "a");
    }
}
