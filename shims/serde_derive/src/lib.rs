//! Minimal `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` with no `syn`/`quote` dependency. The input
//! item is parsed directly from the `proc_macro` token trees (attributes
//! and visibility skipped, angle-depth-aware field splitting) and the
//! impl is generated as a string targeting the shim `serde`'s
//! `Content`-tree data model. Enums use serde's externally-tagged
//! representation. `#[serde(...)]` attributes are not supported — the
//! workspace does not use any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields; only the arity matters.
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { fields: Fields },
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Parsed {
    name: String,
    /// Generic parameter list text, without the angle brackets
    /// (e.g. `'a`), or empty.
    generics: String,
    item: Item,
}

fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — the bracket group follows the punct.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits `toks` on commas at angle-bracket depth zero, dropping empty
/// segments (trailing comma).
fn split_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.retain(|seg| !seg.is_empty());
    out
}

fn parse_named_fields(group_toks: &[TokenTree]) -> Vec<String> {
    split_commas(group_toks)
        .iter()
        .filter_map(|seg| {
            let i = skip_attrs_and_vis(seg, 0);
            match seg.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Parsed {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;

    // Optional generics: capture `<...>` verbatim (lifetimes and/or
    // type params; bounds are carried through unchanged).
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1i32;
            let mut inner = TokenStream::new();
            while depth > 0 {
                match &toks[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                inner.extend([toks[i].clone()]);
                i += 1;
            }
            generics = inner.to_string();
        }
    }

    let item = if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                fields: Fields::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                fields: Fields::Tuple(
                    split_commas(&g.stream().into_iter().collect::<Vec<_>>()).len(),
                ),
            },
            _ => Item::Struct {
                fields: Fields::Unit,
            },
        }
    } else if kind == "enum" {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                g.stream().into_iter().collect::<Vec<_>>()
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        };
        let mut variants = Vec::new();
        let mut j = 0;
        while j < body.len() {
            j = skip_attrs_and_vis(&body, j);
            let Some(TokenTree::Ident(id)) = body.get(j) else {
                break;
            };
            let vname = id.to_string();
            j += 1;
            let fields = match body.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    j += 1;
                    Fields::Named(parse_named_fields(
                        &g.stream().into_iter().collect::<Vec<_>>(),
                    ))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    j += 1;
                    Fields::Tuple(split_commas(&g.stream().into_iter().collect::<Vec<_>>()).len())
                }
                _ => Fields::Unit,
            };
            // Discriminant values (`= N`) and the trailing comma.
            while let Some(t) = body.get(j) {
                j += 1;
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
            }
            variants.push(Variant {
                name: vname,
                fields,
            });
        }
        Item::Enum { variants }
    } else {
        panic!("serde_derive: `{kind}` items are not supported");
    };

    Parsed {
        name,
        generics,
        item,
    }
}

fn impl_header(p: &Parsed, trait_name: &str) -> String {
    if p.generics.is_empty() {
        format!("impl ::serde::{} for {}", trait_name, p.name)
    } else {
        format!(
            "impl<{g}> ::serde::{t} for {n}<{g}>",
            g = p.generics,
            t = trait_name,
            n = p.name
        )
    }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse_item(input);
    let body = match &p.item {
        Item::Struct { fields } => match fields {
            Fields::Named(names) => {
                let entries: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_content(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Content::Map(::std::vec![{}])", entries.join(","))
            }
            Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", items.join(","))
            }
            Fields::Unit => "::serde::Content::Null".to_string(),
        },
        Item::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let n = &p.name;
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{n}::{vn} => ::serde::Content::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{n}::{vn}(f0) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        Fields::Tuple(k) => {
                            let binds: Vec<String> = (0..*k).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*k)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "{n}::{vn}({}) => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Content::Seq(::std::vec![{}]))]),",
                                binds.join(","),
                                items.join(",")
                            )
                        }
                        Fields::Named(names) => {
                            let binds = names.join(",");
                            let entries: Vec<String> = names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{n}::{vn}{{{binds}}} => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Content::Map(::std::vec![{}]))]),",
                                entries.join(",")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "{header} {{ fn to_content(&self) -> ::serde::Content {{ {body} }} }}",
        header = impl_header(&p, "Serialize"),
    );
    out.parse().expect("serde_derive: generated impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse_item(input);
    let name = &p.name;
    let body = match &p.item {
        Item::Struct { fields } => match fields {
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_content(\
                             ::serde::map_get(c, \"{f}\")?)?"
                        )
                    })
                    .collect();
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(",")
                )
            }
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))"
            ),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_content(::serde::seq_get(c, {i})?)?"
                        )
                    })
                    .collect();
                format!(
                    "::std::result::Result::Ok({name}({}))",
                    inits.join(",")
                )
            }
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Item::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => {{ let p = ::serde::payload(payload, \"{vn}\")?; \
                             ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(p)?)) }},"
                        ),
                        Fields::Tuple(k) => {
                            let inits: Vec<String> = (0..*k)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_content(\
                                         ::serde::seq_get(p, {i})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let p = ::serde::payload(payload, \"{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }},",
                                inits.join(",")
                            )
                        }
                        Fields::Named(names) => {
                            let inits: Vec<String> = names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(\
                                         ::serde::map_get(p, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let p = ::serde::payload(payload, \"{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) }},",
                                inits.join(",")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (tag, payload) = ::serde::enum_tag(c)?; \
                 match tag {{ {} other => ::std::result::Result::Err(\
                 ::std::format!(\"unknown {name} variant `{{}}`\", other)), }}",
                arms.join("\n")
            )
        }
    };
    let out = format!(
        "{header} {{ fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::std::string::String> {{ {body} }} }}",
        header = impl_header(&p, "Deserialize"),
    );
    out.parse().expect("serde_derive: generated impl parses")
}
