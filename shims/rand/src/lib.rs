//! Minimal `rand`: a seedable xoshiro256** `StdRng` plus the `Rng`
//! surface `simcore::SimRng` uses (`gen::<u64>`, `gen::<f64>`,
//! `gen_range` over half-open integer ranges). Fully deterministic —
//! there is no entropy source in this shim at all, which is exactly what
//! the simulation substrate wants.

use std::ops::Range;

/// Core random source: a stream of u64s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `Rng::gen_range` can sample over a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range shapes `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        if hi == usize::MAX {
            // Avoid overflow in hi + 1; nudge the span down by one draw.
            let r = rng.next_u64() as usize;
            return lo.wrapping_add(r % (hi - lo).wrapping_add(1).max(1));
        }
        usize::sample_range(rng, lo, hi + 1)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        if hi == u64::MAX {
            if lo == 0 {
                return rng.next_u64();
            }
            return lo + rng.next_u64() % (hi - lo + 1);
        }
        u64::sample_range(rng, lo, hi + 1)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                debug_assert!(span > 0);
                // Multiply-shift rejection-free mapping (Lemire); the
                // tiny modulo bias is irrelevant for simulation draws.
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let r = rng.next_u64() as u128;
                (lo as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}
uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, per the xoshiro authors' seeding advice.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(0usize..3);
            assert!(i < 3);
        }
    }
}
