//! Minimal `bytes`: a refcounted immutable byte buffer plus the
//! `Buf`/`BufMut` cursor traits the pbio wire codec uses. `Bytes::clone`
//! is a refcount bump — clones share storage, observable through
//! `as_ptr` identity, which the resend-buffer sharing tests rely on.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    /// Copies the contents out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self.0[..self.0.len().min(32)])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(Arc::new(iter.into_iter().collect()))
    }
}

/// Read cursor over a byte source.
///
/// # Panics
///
/// All `get_*` methods panic when fewer than the required bytes remain,
/// matching the real crate's contract.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "Buf underflow");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Fills `dst` from the source.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr(), "clone is a refcount bump");
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn buf_round_trip() {
        let mut w: Vec<u8> = Vec::new();
        w.put_u8(7);
        w.put_f64_le(1.5);
        w.put_slice(b"xy");
        let mut r: &[u8] = &w;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 2);
    }
}
