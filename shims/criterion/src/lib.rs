//! Minimal `criterion`: just enough structure for the workspace benches
//! to compile and run as smoke tests. Each benchmark routine executes a
//! handful of iterations and reports wall time per iteration — no
//! statistics, no reports. The point is that `cargo bench` (and the CI
//! example-run step) exercises the bench bodies, not that it measures.

use std::time::Instant;

/// Batch sizing hints, accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotations, accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Per-routine driver passed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs `routine` `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
    }

    /// Runs `setup` + `routine` pairs `iters` times.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            std::hint::black_box(routine(input));
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint, accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Throughput annotation, accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs `f` a few times and prints the mean wall time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        const ITERS: u64 = 3;
        let mut b = Bencher { iters: ITERS };
        let start = Instant::now();
        f(&mut b);
        let per_iter = start.elapsed() / ITERS as u32;
        println!("bench {}/{}: ~{:?}/iter", self.name, id, per_iter);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            _parent: self,
        };
        g.bench_function(id, f);
        drop(g);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
