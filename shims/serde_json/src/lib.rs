//! Minimal `serde_json`: a hand-written JSON parser and writer over the
//! shim `serde`'s `Content` tree, a dynamic [`Value`] type, and the
//! `to_string`/`to_string_pretty`/`to_vec`/`from_str`/`from_slice`
//! entry points. Object keys keep insertion order, so output for a
//! given value is deterministic byte-for-byte.

use serde::{Content, Deserialize, Serialize};

/// Parse or shape-mismatch failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an i64, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as an f64, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

// A single integer comparison impl, so `value["k"] == 1` infers u64.
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::U64(n) => Content::U64(*n),
        Value::I64(n) => Content::I64(*n),
        Value::F64(n) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(entries) => Content::Map(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(n) => Value::U64(*n),
        Content::I64(n) => Value::I64(*n),
        Content::F64(n) => Value::F64(*n),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(content_to_value(c))
    }
}

// ---- writer ----

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is shortest-round-trip and always keeps a decimal
        // point or exponent, so the value re-parses as a float.
        out.push_str(&format!("{v:?}"));
    } else {
        // Real serde_json refuses non-finite floats; a diagnostic dump
        // is more useful than a panic here.
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, c: &Content, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Compact JSON text for `value`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_content());
    Ok(out)
}

/// Human-readable (2-space indented) JSON text for `value`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_content(), 0);
    Ok(out)
}

/// Compact JSON bytes for `value`.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ---- parser ----

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            self.err(&format!("expected `{kw}`"))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(Error("truncated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, however many bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Content::I64)
                .ok_or_else(|| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

fn parse(bytes: &[u8]) -> Result<Content, Error> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

/// Parses `s` into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

/// Parses `bytes` into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let content = parse(bytes)?;
    T::from_content(&content).map_err(Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v: Value =
            from_str(r#"{"a": 1, "b": [-2, 1.5, "x\n", true, null], "c": {}}"#).unwrap();
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"].as_array().unwrap().len(), 5);
        assert_eq!(v["missing"], Value::Null);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_format_is_indented() {
        let v: Value = from_str(r#"{"k":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn floats_keep_their_point() {
        let text = to_string(&vec![1.0f64, 0.5]).unwrap();
        assert_eq!(text, "[1.0,0.5]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, vec![1.0, 0.5]);
    }
}
