//! Vendored stand-in for the `crossbeam` facade crate (offline build;
//! see `.cargo/config.toml`). Only the slice of the API the workspace
//! uses is provided: `crossbeam::channel` bounded/unbounded MPSC
//! channels, implemented as thin newtypes over `std::sync::mpsc` so the
//! blocking, backpressure, and disconnect semantics are the standard
//! library's. Code written against this surface compiles unchanged
//! against real crossbeam.

/// Multi-producer single-consumer channels (`crossbeam::channel`
/// API subset).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Creates a channel of bounded capacity: `send` blocks while the
    /// buffer holds `cap` messages, which is the backpressure the
    /// digest plane's producer relies on.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    /// Creates an unbounded channel; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// Sending half of a channel.
    pub struct Sender<T>(SenderKind<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Buffers the message, blocking while a bounded channel is
        /// full; errs (returning the message) when every receiver is
        /// gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Bounded(tx) => tx.send(value),
                SenderKind::Unbounded(tx) => tx.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }
}
