//! Placeholder for the patch table; the workspace does not use crossbeam.
